package netsim

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/allreduce"
)

// connPair returns two framed conns over an in-memory duplex pipe.
func connPair(t *testing.T) (allreduce.Conn, allreduce.Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := allreduce.NewConn(a, 0), allreduce.NewConn(b, 0)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestFaultPassThrough(t *testing.T) {
	a, b := connPair(t)
	fa := WrapConn(a, Fault{})
	want := &allreduce.Frame{Type: allreduce.FrameChunk, Gen: 1, Step: 2, Seq: 3, Payload: []byte{9, 8, 7, 6}}
	done := make(chan error, 1)
	go func() { done <- fa.Send(want) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if got.Type != want.Type || got.Gen != want.Gen || got.Step != want.Step || got.Seq != want.Seq {
		t.Fatalf("frame mismatch: %+v", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("send: %v", err)
	}
}

func TestFaultDropAfterSends(t *testing.T) {
	a, b := connPair(t)
	fa := WrapConn(a, Fault{DropAfterSends: 2})
	f := &allreduce.Frame{Type: allreduce.FrameHello, Gen: 1}
	absorbed := make(chan struct{})
	go func() { b.Recv(); close(absorbed) }() // absorb the first delivery
	if err := fa.Send(f); err != nil {
		t.Fatalf("first send should pass: %v", err)
	}
	<-absorbed
	if err := fa.Send(f); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("second send: got %v, want ErrInjectedDrop", err)
	}
	if err := fa.Send(f); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("third send: got %v, want ErrInjectedDrop (sticky)", err)
	}
	// The underlying conn is closed, so the peer sees a hard failure too.
	b.SetDeadline(time.Now().Add(time.Second))
	if _, err := b.Recv(); err == nil {
		t.Fatal("peer recv after drop: want error, got frame")
	}
}

func TestFaultDropAfterRecvs(t *testing.T) {
	a, b := connPair(t)
	fb := WrapConn(b, Fault{DropAfterRecvs: 1})
	go a.Send(&allreduce.Frame{Type: allreduce.FrameHello})
	if _, err := fb.Recv(); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("recv: got %v, want ErrInjectedDrop", err)
	}
}

func TestFaultPartitionSendSwallows(t *testing.T) {
	a, b := connPair(t)
	fa := WrapConn(a, Fault{PartitionSend: true})
	if err := fa.Send(&allreduce.Frame{Type: allreduce.FrameHello}); err != nil {
		t.Fatalf("partitioned send should report success: %v", err)
	}
	b.SetDeadline(time.Now().Add(150 * time.Millisecond))
	_, err := b.Recv()
	if !allreduce.IsTimeout(err) {
		t.Fatalf("peer recv: got %v, want deadline timeout", err)
	}
}

func TestFaultPartitionRecvDiscards(t *testing.T) {
	a, b := connPair(t)
	fb := WrapConn(b, Fault{PartitionRecv: true})
	go func() {
		f := &allreduce.Frame{Type: allreduce.FrameHello}
		a.Send(f)
		a.Send(f)
	}()
	fb.SetDeadline(time.Now().Add(200 * time.Millisecond))
	_, err := fb.Recv()
	if !allreduce.IsTimeout(err) {
		t.Fatalf("partitioned recv: got %v, want deadline timeout", err)
	}
}

func TestFaultDelayAndJitterDeterministic(t *testing.T) {
	// Two identically-seeded faults must draw identical jitter sequences.
	f1 := WrapConn(nil, Fault{Jitter: time.Hour, Seed: 42})
	f2 := WrapConn(nil, Fault{Jitter: time.Hour, Seed: 42})
	for i := 0; i < 16; i++ {
		d1 := f1.rng.Int63n(int64(time.Hour))
		d2 := f2.rng.Int63n(int64(time.Hour))
		if d1 != d2 {
			t.Fatalf("draw %d: %d != %d", i, d1, d2)
		}
	}

	// A fixed delay actually delays delivery.
	a, b := connPair(t)
	fa := WrapConn(a, Fault{Delay: 80 * time.Millisecond})
	start := time.Now()
	go fa.Send(&allreduce.Frame{Type: allreduce.FrameHello})
	if _, err := b.Recv(); err != nil {
		t.Fatalf("recv: %v", err)
	}
	if got := time.Since(start); got < 60*time.Millisecond {
		t.Fatalf("delivery took %v, want ≥ 60ms", got)
	}
}
