package core

import (
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/nn"
	"repro/internal/tune"
)

// TestGoldenRunBitIdentical pins the exact per-trial validation Dice of Run
// under both distribution strategies for fixed seeds, captured from the
// pre-train.Session implementation. Trials are keyed by their rendered
// config (deterministic), so the concurrent experiment-parallel schedule
// cannot permute the comparison. Values are engine-specific.
func TestGoldenRunBitIdentical(t *testing.T) {
	want := map[string]map[string]uint64{
		"gemm/data": {
			"augment=flip;loss=dice;lr=0.01;optimizer=sgd;": 0x3faab68a0473c1ab,
			"augment=flip;loss=dice;lr=0.05;optimizer=sgd;": 0x3fab6db6db6db6db,
			"augment=none;loss=dice;lr=0.01;optimizer=sgd;": 0x3faab68a0473c1ab,
			"augment=none;loss=dice;lr=0.05;optimizer=sgd;": 0x3fabed61bed61bed,
		},
		"gemm/experiment": {
			"augment=flip;loss=dice;lr=0.01;optimizer=sgd;": 0x3faab68a0473c1ab,
			"augment=flip;loss=dice;lr=0.05;optimizer=sgd;": 0x3fb024e6a171024e,
			"augment=none;loss=dice;lr=0.01;optimizer=sgd;": 0x3faa7b9611a7b961,
			"augment=none;loss=dice;lr=0.05;optimizer=sgd;": 0x3fabed61bed61bed,
		},
		"direct/data": {
			"augment=flip;loss=dice;lr=0.01;optimizer=sgd;": 0x3faab68a0473c1ab,
			"augment=flip;loss=dice;lr=0.05;optimizer=sgd;": 0x3fab6db6db6db6db,
			"augment=none;loss=dice;lr=0.01;optimizer=sgd;": 0x3faab68a0473c1ab,
			"augment=none;loss=dice;lr=0.05;optimizer=sgd;": 0x3fabed61bed61bed,
		},
		"direct/experiment": {
			"augment=flip;loss=dice;lr=0.01;optimizer=sgd;": 0x3faab68a0473c1ab,
			"augment=flip;loss=dice;lr=0.05;optimizer=sgd;": 0x3fb024e6a171024e,
			"augment=none;loss=dice;lr=0.01;optimizer=sgd;": 0x3faa7b9611a7b961,
			"augment=none;loss=dice;lr=0.05;optimizer=sgd;": 0x3fabed61bed61bed,
		},
	}

	print := os.Getenv("REPRO_GOLDEN_PRINT") != ""
	engines := map[string]nn.ConvEngine{"gemm": nn.EngineGEMM, "direct": nn.EngineDirect}
	for _, ename := range []string{"gemm", "direct"} {
		for _, strategy := range []Strategy{StrategyData, StrategyExperiment} {
			key := fmt.Sprintf("%s/%s", ename, strategy)
			t.Run(key, func(t *testing.T) {
				opts := smallOptions(strategy, 2)
				opts.Epochs = 2
				opts.Net.Engine = engines[ename]
				res, err := Run(opts)
				if err != nil {
					t.Fatal(err)
				}
				got := map[string]uint64{}
				for _, tr := range res.Trials {
					if tr.Err != nil {
						t.Fatalf("trial %v errored: %v", tr.Config, tr.Err)
					}
					got[renderConfig(tr.Config)] = math.Float64bits(tr.Dice)
				}
				if print {
					fmt.Printf("GOLDEN %q: {\n", key)
					for _, tr := range res.Trials {
						fmt.Printf("\t%q: %#x,\n", renderConfig(tr.Config), math.Float64bits(tr.Dice))
					}
					fmt.Printf("},\n")
					return
				}
				w := want[key]
				if len(got) != len(w) {
					t.Fatalf("trial count %d, want %d", len(got), len(w))
				}
				for cfg, bits := range w {
					if got[cfg] != bits {
						t.Errorf("trial %s: dice bits %#x, want %#x", cfg, got[cfg], bits)
					}
				}
			})
		}
	}
}

// renderConfig mirrors tune's deterministic config rendering for keying.
func renderConfig(c tune.Config) string {
	cfgs := []tune.Config{c}
	tune.SortConfigs(cfgs) // no-op for one config; keeps the tune dependency honest
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sortStrings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%v;", k, c[k])
	}
	return s
}

func sortStrings(s []string) {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
}
