// Package core is the DistMIS facade: the paper's framework entry point that
// trains 3D medical image segmentation models on a multi-node multi-GPU
// cluster under either of the two distribution strategies — data parallelism
// (every experiment over all GPUs, serialized) or experiment parallelism
// (one experiment per GPU, scheduled by the tune layer). Real mathematics
// runs end to end: phantom MSD-like volumes, preprocessing, the 3D U-Net,
// Dice losses, ring all-reduce and hyper-parameter search.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/augment"
	"repro/internal/cluster"
	"repro/internal/msd"
	"repro/internal/parallel"
	"repro/internal/raysgd"
	"repro/internal/train"
	"repro/internal/tune"
	"repro/internal/unet"
	"repro/internal/volume"
)

// Strategy selects the distribution approach of Figure 1.
type Strategy string

// The two distribution strategies of the paper.
const (
	StrategyData       Strategy = "data"
	StrategyExperiment Strategy = "experiment"
)

// Options configures a DistMIS run.
type Options struct {
	Strategy Strategy
	GPUs     int

	Net     unet.Config
	Dataset msd.Config
	Space   *tune.Space

	Epochs          int
	BatchPerReplica int
	Seed            int64

	// Workers is the machine-wide compute-worker budget (0 = all cores).
	// Data-parallel runs hand it to the single trainer; experiment-parallel
	// runs divide it among the concurrent single-GPU trials.
	Workers int

	// Scheduler optionally enables early stopping in experiment-parallel
	// mode (nil = FIFO, the paper's behaviour).
	Scheduler tune.Scheduler

	// MaxTrainCases / MaxValCases cap the dataset for quick runs; 0 means
	// use the full split.
	MaxTrainCases int
	MaxValCases   int

	// CheckpointDir, when non-empty, makes the run a resumable campaign:
	// every trial checkpoints its session there after each epoch, finished
	// trials are recorded, and a re-run with the same options skips
	// completed trials and resumes in-flight ones from their last
	// checkpoint — bit-identically to a run that was never interrupted.
	CheckpointDir string
}

// DefaultOptions returns a laptop-scale configuration exercising the whole
// stack: small phantoms, a thin U-Net and the paper's search space.
func DefaultOptions() Options {
	net := unet.PaperConfig()
	net.BaseFilters = 2
	net.Steps = 2
	return Options{
		Strategy:        StrategyExperiment,
		GPUs:            4,
		Net:             net,
		Dataset:         msd.Config{Cases: 16, D: 8, H: 8, W: 8, Seed: 7},
		Space:           tune.PaperSpace(),
		Epochs:          2,
		BatchPerReplica: 2,
		Seed:            1,
		MaxTrainCases:   8,
		MaxValCases:     2,
	}
}

// TrialResult is the outcome of one experiment.
type TrialResult struct {
	Config tune.Config
	Dice   float64
	Status string
	Err    error
}

// Result summarizes a full run.
type Result struct {
	Strategy Strategy
	GPUs     int
	Elapsed  time.Duration
	Trials   []TrialResult
	Best     tune.Config
	BestDice float64
}

// Run executes the configured hyper-parameter search and returns per-trial
// and best results.
func Run(opts Options) (*Result, error) {
	if opts.Strategy != StrategyData && opts.Strategy != StrategyExperiment {
		return nil, fmt.Errorf("core: unknown strategy %q", opts.Strategy)
	}
	if opts.GPUs < 1 {
		return nil, fmt.Errorf("core: GPUs must be ≥ 1")
	}
	if opts.Epochs < 1 {
		return nil, fmt.Errorf("core: Epochs must be ≥ 1")
	}
	if opts.Space == nil {
		return nil, fmt.Errorf("core: nil search space")
	}
	configs, err := opts.Space.GridConfigs()
	if err != nil {
		return nil, err
	}
	tune.SortConfigs(configs)

	train, val, err := prepareData(opts)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.ForGPUs(opts.GPUs)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	var trials []TrialResult
	switch opts.Strategy {
	case StrategyData:
		trials, err = runDataParallel(opts, cl, configs, train, val)
	case StrategyExperiment:
		trials, err = runExperimentParallel(opts, cl, configs, train, val)
	}
	if err != nil {
		return nil, err
	}

	res := &Result{
		Strategy: opts.Strategy,
		GPUs:     opts.GPUs,
		Elapsed:  time.Since(start),
		Trials:   trials,
	}
	for _, tr := range trials {
		if tr.Err == nil && (res.Best == nil || tr.Dice > res.BestDice) {
			res.Best = tr.Config
			res.BestDice = tr.Dice
		}
	}
	return res, nil
}

// prepareData generates the phantom dataset, applies the paper's
// preprocessing and returns the train and validation sample sets.
func prepareData(opts Options) (train, val []*volume.Sample, err error) {
	ds, err := msd.Generate(opts.Dataset)
	if err != nil {
		return nil, nil, err
	}
	minDiv := opts.Net.MinVolume()
	collect := func(idx []int, cap int) ([]*volume.Sample, error) {
		if cap > 0 && len(idx) > cap {
			idx = idx[:cap]
		}
		out := make([]*volume.Sample, 0, len(idx))
		for _, i := range idx {
			s, err := volume.Preprocess(ds.Cases[i], minDiv)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	}
	if train, err = collect(ds.Train, opts.MaxTrainCases); err != nil {
		return nil, nil, err
	}
	if val, err = collect(ds.Val, opts.MaxValCases); err != nil {
		return nil, nil, err
	}
	if len(train) == 0 {
		return nil, nil, fmt.Errorf("core: empty training split")
	}
	return train, val, nil
}

// trainOne trains one configuration on the given GPU count through a
// train.Session and returns the final validation Dice. The report hook
// forwards per-epoch metrics. When trialDir is non-empty the session
// checkpoints there every epoch and resumes from an existing checkpoint —
// replaying the restored epochs through the report protocol so schedulers
// observe the same stream as an uninterrupted run.
func trainOne(opts Options, cl *cluster.Cluster, cfg tune.Config, gpus, workers int, trialDir string,
	trainSet, val []*volume.Sample, report func(epoch int, dice float64) bool) (float64, error) {

	var aug *augment.Pipeline
	if cfg.Has("augment") {
		var err error
		if aug, err = augment.ByName(cfg.Str("augment"), opts.Seed); err != nil {
			return 0, err
		}
		if aug.Len() == 0 {
			aug = nil
		}
	}
	tr, err := raysgd.New(raysgd.Config{
		Cluster:         cl,
		GPUs:            gpus,
		Net:             opts.Net,
		Loss:            cfg.Str("loss"),
		Optimizer:       cfg.Str("optimizer"),
		BaseLR:          cfg.Float("lr"),
		BatchPerReplica: opts.BatchPerReplica,
		Seed:            opts.Seed,
		Workers:         workers,
		Augment:         aug,
	})
	if err != nil {
		return 0, err
	}

	var cbs []train.Callback
	if report != nil {
		cbs = append(cbs, train.ReportFunc(func(st train.EpochStats) bool {
			return report(st.Epoch, st.ValDice)
		}))
	}
	ckptPath := ""
	if trialDir != "" {
		if err := os.MkdirAll(trialDir, 0o755); err != nil {
			return 0, err
		}
		ckptPath = filepath.Join(trialDir, "session.ckpt")
		cbs = append(cbs, &train.PeriodicCheckpoint{Path: ckptPath, Every: 1})
	}
	sess, err := tr.NewSession(opts.Epochs, cbs...)
	if err != nil {
		return 0, err
	}
	if ckptPath != "" {
		var replay func(train.EpochStats) bool
		if report != nil {
			replay = func(st train.EpochStats) bool { return report(st.Epoch, st.ValDice) }
		}
		if _, err := sess.ResumeFromFile(ckptPath, replay); err != nil {
			return 0, err
		}
	}
	last, err := sess.Fit(trainSet, val)
	if err != nil {
		return 0, err
	}
	return last.ValDice, nil
}

// runDataParallel serializes experiments, each spanning all GPUs.
func runDataParallel(opts Options, cl *cluster.Cluster, configs []tune.Config,
	train, val []*volume.Sample) ([]TrialResult, error) {

	out := make([]TrialResult, 0, len(configs))
	for i, cfg := range configs {
		trialDir := ""
		if opts.CheckpointDir != "" {
			trialDir = tune.TrialDir(opts.CheckpointDir, i)
		}
		dice, err := trainOne(opts, cl, cfg, opts.GPUs, opts.Workers, trialDir, train, val, nil)
		res := TrialResult{Config: cfg, Dice: dice, Status: "TERMINATED", Err: err}
		if err != nil {
			res.Status = "ERRORED"
		}
		out = append(out, res)
	}
	return out, nil
}

// runExperimentParallel distributes single-GPU experiments with the tune
// runner, one per GPU.
func runExperimentParallel(opts Options, cl *cluster.Cluster, configs []tune.Config,
	train, val []*volume.Sample) ([]TrialResult, error) {

	runner, err := tune.NewRunner(cl, opts.Scheduler, "dice", "max")
	if err != nil {
		return nil, err
	}
	runner.CheckpointDir = opts.CheckpointDir
	// The runner schedules one single-GPU trial per cluster GPU (rounded up
	// to whole nodes, so possibly more than opts.GPUs) but never more than
	// there are configs; divide the budget by the real concurrency so the
	// trials share the machine without oversubscribing or idling it.
	concurrent := cl.TotalGPUs()
	if len(configs) < concurrent {
		concurrent = len(configs)
	}
	// ShareN distributes the budget remainder across the concurrent trial
	// slots (Share would floor it, idling total%concurrent cores). Each
	// running trial holds one slot from a free stack and returns it when it
	// finishes, so at any moment the running trials hold disjoint shares —
	// a monotonic round-robin counter would let two live trials land on the
	// same (large or small) share once trials start finishing out of order.
	shares := parallel.ShareN(opts.Workers, concurrent)
	freeSlots := make([]int, len(shares))
	for i := range freeSlots {
		freeSlots[i] = i
	}
	var slotMu sync.Mutex
	analysis, err := runner.Run(configs, func(ctx *tune.TrialContext) error {
		slotMu.Lock()
		slot := -1
		if n := len(freeSlots); n > 0 {
			slot = freeSlots[n-1]
			freeSlots = freeSlots[:n-1]
		}
		slotMu.Unlock()
		perTrial := shares[len(shares)-1] // smallest share, if oversubscribed
		if slot >= 0 {
			perTrial = shares[slot]
			defer func() {
				slotMu.Lock()
				freeSlots = append(freeSlots, slot)
				slotMu.Unlock()
			}()
		}
		trialDir, err := ctx.Dir()
		if err != nil {
			return err
		}
		_, err = trainOne(opts, cl, ctx.Trial.Config, 1, perTrial, trialDir, train, val,
			func(epoch int, dice float64) bool {
				return ctx.Report(epoch, map[string]float64{"dice": dice})
			})
		return err
	})
	if err != nil {
		return nil, err
	}
	out := make([]TrialResult, 0, len(analysis.Trials))
	for _, tr := range analysis.Trials {
		res := TrialResult{Config: tr.Config, Status: tr.Status().String(), Err: tr.Err()}
		if d, ok := tr.BestMetric("dice", "max"); ok {
			res.Dice = d
		}
		out = append(out, res)
	}
	return out, nil
}
