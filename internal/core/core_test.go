package core

import (
	"testing"

	"repro/internal/tune"
)

// smallOptions keeps real training fast: 4 configs, tiny volumes.
func smallOptions(strategy Strategy, gpus int) Options {
	opts := DefaultOptions()
	opts.Strategy = strategy
	opts.GPUs = gpus
	space, err := tune.NewSpace(
		tune.Grid("lr", 0.01, 0.05),
		tune.Grid("loss", "dice"),
		tune.Grid("optimizer", "sgd"),
		tune.Grid("augment", "none", "flip"),
	)
	if err != nil {
		panic(err)
	}
	opts.Space = space
	opts.Epochs = 1
	opts.MaxTrainCases = 4
	opts.MaxValCases = 1
	return opts
}

func TestRunValidation(t *testing.T) {
	opts := smallOptions(StrategyData, 1)
	opts.Strategy = "banana"
	if _, err := Run(opts); err == nil {
		t.Fatal("unknown strategy must error")
	}
	opts = smallOptions(StrategyData, 1)
	opts.GPUs = 0
	if _, err := Run(opts); err == nil {
		t.Fatal("0 GPUs must error")
	}
	opts = smallOptions(StrategyData, 1)
	opts.Epochs = 0
	if _, err := Run(opts); err == nil {
		t.Fatal("0 epochs must error")
	}
	opts = smallOptions(StrategyData, 1)
	opts.Space = nil
	if _, err := Run(opts); err == nil {
		t.Fatal("nil space must error")
	}
}

func TestRunDataParallelStrategy(t *testing.T) {
	res, err := Run(smallOptions(StrategyData, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyData || res.GPUs != 2 {
		t.Fatalf("result header %+v", res)
	}
	if len(res.Trials) != 4 {
		t.Fatalf("trials %d, want 4", len(res.Trials))
	}
	for _, tr := range res.Trials {
		if tr.Err != nil {
			t.Fatalf("trial failed: %v", tr.Err)
		}
		if tr.Dice < 0 || tr.Dice > 1 {
			t.Fatalf("dice %v", tr.Dice)
		}
	}
	if res.Best == nil {
		t.Fatal("no best config")
	}
}

func TestRunExperimentParallelStrategy(t *testing.T) {
	res, err := Run(smallOptions(StrategyExperiment, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 4 {
		t.Fatalf("trials %d", len(res.Trials))
	}
	for _, tr := range res.Trials {
		if tr.Err != nil {
			t.Fatalf("trial failed: %v", tr.Err)
		}
		if tr.Status != "TERMINATED" {
			t.Fatalf("status %s", tr.Status)
		}
	}
	if res.Best == nil {
		t.Fatal("no best config")
	}
}

func TestBothStrategiesExploreSameSpace(t *testing.T) {
	// Figure 1: the two pipelines differ only in distribution; the set of
	// experiments is identical.
	data, err := Run(smallOptions(StrategyData, 1))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Run(smallOptions(StrategyExperiment, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Trials) != len(exp.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(data.Trials), len(exp.Trials))
	}
	// Trials are sorted deterministically, so configs must match pairwise.
	for i := range data.Trials {
		for _, k := range []string{"lr", "loss", "optimizer", "augment"} {
			if data.Trials[i].Config[k] != exp.Trials[i].Config[k] {
				t.Fatalf("trial %d differs on %s", i, k)
			}
		}
	}
}

func TestAugmentDoublesTrainingSet(t *testing.T) {
	// Smoke: the flip axis must not break training and must change results
	// (different gradient stream).
	opts := smallOptions(StrategyData, 1)
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	var none, flip float64
	for _, tr := range res.Trials {
		if tr.Config.Float("lr") != 0.01 {
			continue
		}
		switch tr.Config.Str("augment") {
		case "none":
			none = tr.Dice
		case "flip":
			flip = tr.Dice
		}
	}
	if none == 0 && flip == 0 {
		t.Fatal("expected both augment variants in trials")
	}
}

func TestDefaultOptionsRunnable(t *testing.T) {
	if DefaultOptions().Space.Size() != 32 {
		t.Fatal("default space should be the paper's 32-experiment grid")
	}
}
