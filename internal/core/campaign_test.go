package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tune"
)

func diceBits(res *Result) map[string]uint64 {
	out := map[string]uint64{}
	for _, tr := range res.Trials {
		out[renderConfig(tr.Config)] = math.Float64bits(tr.Dice)
	}
	return out
}

// TestCampaignRunResumeBitIdentical: a campaign re-run over its checkpoint
// directory must reproduce the first run's results bit-for-bit — completed
// trials restore from their records, and a trial whose record was lost
// (killed before the runner could write it) re-runs from its session
// checkpoint to the identical result.
func TestCampaignRunResumeBitIdentical(t *testing.T) {
	for _, strategy := range []Strategy{StrategyExperiment, StrategyData} {
		t.Run(string(strategy), func(t *testing.T) {
			dir := t.TempDir()
			opts := smallOptions(strategy, 2)
			opts.Epochs = 2
			opts.CheckpointDir = dir

			res1, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			want := diceBits(res1)
			for _, tr := range res1.Trials {
				if tr.Err != nil {
					t.Fatalf("trial %v errored: %v", tr.Config, tr.Err)
				}
			}
			// Every trial left a session checkpoint in its trial directory.
			for i := range res1.Trials {
				p := filepath.Join(tune.TrialDir(dir, i), "session.ckpt")
				if _, err := os.Stat(p); err != nil {
					t.Fatalf("missing session checkpoint for trial %d: %v", i, err)
				}
			}

			// Simulate a kill after trial 1's checkpoint but before the
			// campaign recorded it (experiment strategy records trials; the
			// data strategy relies on session checkpoints alone).
			if strategy == StrategyExperiment {
				if err := os.Remove(filepath.Join(dir, "trial-0001.json")); err != nil {
					t.Fatal(err)
				}
			}

			res2, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			got := diceBits(res2)
			if len(got) != len(want) {
				t.Fatalf("trial count %d, want %d", len(got), len(want))
			}
			for cfg, bits := range want {
				if got[cfg] != bits {
					t.Errorf("trial %s: resumed dice bits %#x, want %#x", cfg, got[cfg], bits)
				}
			}
			if math.Float64bits(res2.BestDice) != math.Float64bits(res1.BestDice) {
				t.Fatalf("best dice diverged: %v vs %v", res2.BestDice, res1.BestDice)
			}
		})
	}
}
