package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// RecordKind classifies a trace record.
type RecordKind string

// Record kinds.
const (
	// KindSpan is a timed region: Name plus Dur.
	KindSpan RecordKind = "span"
	// KindEvent is an instantaneous occurrence (lifecycle transitions,
	// faults, checkpoints).
	KindEvent RecordKind = "event"
	// KindStep is one optimizer step: Name, Step, Dur and loss in Attrs.
	KindStep RecordKind = "step"
)

// Record is one line of the JSONL trace stream. TS is nanoseconds since
// the tracer started, taken from the monotonic clock, so differences
// between records are wall-clock-jump-proof; spans carry their duration in
// Dur. Contextual identity (rank, generation, path, cause…) rides in
// Attrs as strings, keeping the schema stable while every subsystem
// attaches its own context.
type Record struct {
	TS    int64             `json:"ts_ns"`
	Kind  RecordKind        `json:"kind"`
	Name  string            `json:"name"`
	Dur   int64             `json:"dur_ns,omitempty"`
	Step  int64             `json:"step,omitempty"`
	Epoch int64             `json:"epoch,omitempty"`
	Gen   int64             `json:"gen,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer appends Records to a writer as JSON lines through a buffered
// asynchronous channel: Emit never blocks — when the writer cannot keep up
// and the buffer fills, the record is dropped and counted instead, so
// tracing cannot stall a training step or a collective. All methods are
// safe on a nil *Tracer (no-ops), so call sites need no guards.
type Tracer struct {
	start   time.Time
	ch      chan Record
	done    chan struct{}
	drops   atomic.Uint64
	written atomic.Uint64

	closeOnce sync.Once
	closer    io.Closer // closed after the writer drains, when non-nil
}

// TracerOptions tunes a Tracer.
type TracerOptions struct {
	// Buffer is the channel depth between Emit and the writer goroutine
	// (default 1024 records).
	Buffer int
}

// NewTracer starts a tracer writing JSONL to w.
func NewTracer(w io.Writer, opts TracerOptions) *Tracer {
	if opts.Buffer <= 0 {
		opts.Buffer = 1024
	}
	t := &Tracer{
		start: time.Now(),
		ch:    make(chan Record, opts.Buffer),
		done:  make(chan struct{}),
	}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	go t.writeLoop(w)
	return t
}

// NewTracerFile starts a tracer writing JSONL to path (truncating it); the
// file is closed by Close.
func NewTracerFile(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTracer(f, TracerOptions{}), nil
}

// writeLoop drains the channel through a buffered writer, flushing
// whenever the stream goes momentarily idle so a tail -f (or a smoke test
// right after a crash) sees complete lines.
func (t *Tracer) writeLoop(w io.Writer) {
	defer close(t.done)
	bw := bufio.NewWriterSize(w, 32<<10)
	enc := json.NewEncoder(bw)
	for rec := range t.ch {
		if enc.Encode(rec) == nil {
			t.written.Add(1)
		}
		if len(t.ch) == 0 {
			bw.Flush()
		}
	}
	bw.Flush()
}

// Emit appends one record, stamping TS when it is zero. It never blocks:
// with the buffer full the record is dropped and Dropped incremented.
func (t *Tracer) Emit(rec Record) {
	if t == nil {
		return
	}
	if rec.TS == 0 {
		rec.TS = time.Since(t.start).Nanoseconds()
	}
	select {
	case t.ch <- rec:
	default:
		t.drops.Add(1)
	}
}

// Event emits an instantaneous event record with optional key/value attr
// pairs.
func (t *Tracer) Event(name string, kv ...string) {
	if t == nil {
		return
	}
	t.Emit(Record{Kind: KindEvent, Name: name, Attrs: attrs(kv)})
}

// Span starts a timed region and returns its end function; call it (once)
// to emit the span record with optional attr pairs.
//
//	defer tr.Span("reform")()
func (t *Tracer) Span(name string) func(kv ...string) {
	if t == nil {
		return func(...string) {}
	}
	t0 := time.Now()
	ts := time.Since(t.start).Nanoseconds()
	return func(kv ...string) {
		t.Emit(Record{TS: ts, Kind: KindSpan, Name: name, Dur: time.Since(t0).Nanoseconds(), Attrs: attrs(kv)})
	}
}

// StepRecord emits one optimizer-step record.
func (t *Tracer) StepRecord(name string, step, epoch int, dur time.Duration, kv ...string) {
	if t == nil {
		return
	}
	t.Emit(Record{Kind: KindStep, Name: name, Step: int64(step), Epoch: int64(epoch),
		Dur: dur.Nanoseconds(), Attrs: attrs(kv)})
}

// Dropped returns how many records were discarded because the writer could
// not keep up.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.drops.Load()
}

// Written returns how many records reached the writer.
func (t *Tracer) Written() uint64 {
	if t == nil {
		return 0
	}
	return t.written.Load()
}

// Close drains and flushes the stream, appends a final trace_dropped event
// when any record was lost, and closes the underlying file when the tracer
// owns one. Emit after Close is a counted drop, never a panic or a block.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.closeOnce.Do(func() {
		if d := t.drops.Load(); d > 0 {
			t.Emit(Record{Kind: KindEvent, Name: "trace_dropped",
				Attrs: map[string]string{"count": itoa(d)}})
		}
		close(t.ch)
	})
	<-t.done
	if t.closer != nil {
		return t.closer.Close()
	}
	return nil
}

func attrs(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func itoa(v uint64) string {
	// Tiny local formatter keeps the drop-report path allocation-bounded.
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
