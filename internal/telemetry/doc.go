// Package telemetry is the process-wide observability layer: a
// concurrency-safe registry of named counters, gauges and fixed-bucket
// histograms with Prometheus text exposition, a structured JSONL
// trace-event stream, and the shared span-aggregation primitive the
// pipeline profiler is built on. It is dependency-free (standard library
// only) and sits below every other internal package, so the training
// sessions, the serving tier, the all-reduce transport and the
// fault-tolerant coordinator all observe themselves through one mechanism
// — the instrumentation answer to the paper's own method, where the
// TensorBoard profiler (not intuition) located the data-loading
// bottleneck.
//
// # Metrics
//
// A Registry hands out typed collector handles at registration time;
// the hot path then works on the handle alone:
//
//	var steps = telemetry.Default().Counter("train_steps_total", "optimizer steps")
//	steps.Inc() // one atomic add, no locks, no allocation
//
// Counters are monotone uint64s, gauges are float64s, histograms have
// fixed bucket bounds chosen at registration. Labelled metrics use
// pre-registered label sets (CounterVec/GaugeVec/HistogramVec): every
// child is created up front, With resolves once at setup, and the hot
// path holds the child pointer — there is no per-observation map lookup
// and no way to explode cardinality at runtime. Func variants
// (CounterFunc/GaugeFunc) sample a callback at scrape time, for values
// another subsystem already maintains (scratch-pool counters, queue
// depths).
//
// Reads never block writes: Value/Snapshot and the Prometheus handler
// load the same atomics the hot path stores, so a monitoring poller
// cannot add tail latency to the paths it watches.
//
// # Exposition
//
// Handler serves the registry in the Prometheus text format
// (text/plain; version=0.0.4) with deterministic ordering: families
// sorted by name, children by label value, buckets ascending. WriteText
// does the same to any io.Writer.
//
// # Tracing
//
// A Tracer appends one JSON object per line — typed span/event/step
// records with monotonic timestamps — through a buffered asynchronous
// writer: Emit hands the record to a channel and never blocks; when the
// writer stalls and the buffer fills, records are dropped and counted
// (Dropped), so tracing cannot slow a training step. All Tracer methods
// are nil-receiver safe, letting instrumentation run unconditionally.
//
// # Spans
//
// SpanGroup aggregates named spans into per-stage totals under one
// mutex+clock implementation; internal/profiler's bottleneck reports are
// a thin view over it, and a SpanGroup with an attached Tracer emits
// every ended span as a trace record too.
package telemetry
