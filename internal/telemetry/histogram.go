package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution. Observe is lock-free — one
// binary search plus four atomic operations, no allocation — so it can sit
// on per-patch and per-step hot paths. Readers (Snapshot, the Prometheus
// handler) load the same atomics and never block an Observe.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; observations above the last land in +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bit pattern, CAS-accumulated
	maxBits atomic.Uint64 // float64 bit pattern, CAS-maximized
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// NewHistogram returns a standalone histogram (not attached to a registry)
// with the given ascending bucket bounds — for tests and ad-hoc use.
func NewHistogram(bounds []float64) *Histogram {
	return newHistogram(checkBounds("histogram", bounds))
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = +Inf
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds. Durations are kept in
// the nanosecond domain end to end (bucket bounds included) so integral
// nanosecond values stay exact in float64 and quantiles convert back to
// time.Duration without rounding drift.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(float64(d))
}

// HistogramSnapshot is a point-in-time, allocation-isolated copy of a
// histogram. Counts are per-bucket (not cumulative); Counts[len(Bounds)]
// is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
	Max    float64
}

// Snapshot copies the histogram's state without blocking writers. The
// count is read first, so concurrent observations can only make the bucket
// totals exceed Count — quantile targets stay well-defined.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	return s
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) from the bucket counts:
// the upper bound of the bucket holding the target rank, and Max for the
// tail beyond the last observation — the same read the serving dashboards
// have always used, accurate to the bucket ratio.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target >= s.Count {
		return s.Max
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum > target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}

// Mean returns Sum/Count, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// DurationBounds converts duration bucket bounds to the float64 nanosecond
// domain ObserveDuration records in. Geometric serving-latency buckets —
// 1µs to ~100s — come from ServeLatencyBounds.
func DurationBounds(bounds []time.Duration) []float64 {
	out := make([]float64, len(bounds))
	for i, d := range bounds {
		out[i] = float64(d)
	}
	return out
}

// GeometricDurationBounds returns n geometric bucket bounds from lo to hi
// inclusive — the shape of the serving tier's latency histograms.
func GeometricDurationBounds(lo, hi time.Duration, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		panic("telemetry: GeometricDurationBounds needs n ≥ 2 and 0 < lo < hi")
	}
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(n-1))
	out := make([]float64, n)
	v := float64(lo)
	for i := range out {
		out[i] = float64(time.Duration(v))
		v *= ratio
	}
	return out
}
