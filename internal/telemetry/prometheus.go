package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders every metric in the registry in the Prometheus text
// exposition format (version 0.0.4), deterministically: families sorted by
// name, children by label value, histogram buckets ascending with the
// cumulative le convention. Reading samples the same atomics the hot paths
// write — no collector is locked against its writers.
func WriteText(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		switch {
		case f.counterFn != nil:
			fmt.Fprintf(bw, "%s %d\n", f.name, f.counterFn())
		case f.gaugeFn != nil:
			fmt.Fprintf(bw, "%s %s\n", f.name, formatFloat(f.gaugeFn()))
		default:
			for _, val := range f.childValues() {
				switch f.typ {
				case typeCounter:
					fmt.Fprintf(bw, "%s%s %d\n", f.name, labelPair(f.label, val), f.counters[val].Value())
				case typeGauge:
					fmt.Fprintf(bw, "%s%s %s\n", f.name, labelPair(f.label, val), formatFloat(f.gauges[val].Value()))
				case typeHistogram:
					writeHistogram(bw, f, val)
				}
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram child: cumulative buckets, sum,
// count.
func writeHistogram(w *bufio.Writer, f *family, val string) {
	s := f.histograms[val].Snapshot()
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairLE(f.label, val, formatFloat(b)), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelPairLE(f.label, val, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelPair(f.label, val), formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelPair(f.label, val), s.Count)
}

// labelPair renders {key="value"}, or nothing for unlabelled children.
func labelPair(key, value string) string {
	if key == "" {
		return ""
	}
	return `{` + key + `="` + escapeLabel(value) + `"}`
}

// labelPairLE renders the bucket label set, keeping le last per convention.
func labelPairLE(key, value, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return `{` + key + `="` + escapeLabel(value) + `",le="` + le + `"}`
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// Handler serves the registry's metrics over HTTP — mount it at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteText(w, r)
	})
}
