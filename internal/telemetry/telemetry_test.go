package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/parallel"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create: same handle back.
	if r.Counter("events_total", "events") != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Inc()
	g.Add(-0.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %g, want 3.5", got)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestVecUnregisteredValuePanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ops_total", "", "op", "read", "write")
	v.With("read").Inc()
	defer func() {
		if recover() == nil {
			t.Fatal("With on unregistered label value should panic")
		}
	}()
	v.With("delete")
}

func TestHistogramSnapshotAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 5556 {
		t.Fatalf("sum = %g, want 5556", s.Sum)
	}
	if s.Max != 5000 {
		t.Fatalf("max = %g, want 5000", s.Max)
	}
	wantCounts := []uint64{2, 1, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	// p50: target = 2, cum after bucket0 = 2 (not > 2), bucket1 → bound 100.
	if q := s.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %g, want 100", q)
	}
	// p99: target = 4, lands in +Inf bucket → Max.
	if q := s.Quantile(0.99); q != 5000 {
		t.Fatalf("p99 = %g, want 5000", q)
	}
	// q=1 → Max.
	if q := s.Quantile(1); q != 5000 {
		t.Fatalf("p100 = %g, want 5000", q)
	}
	if m := s.Mean(); m != 5556.0/5 {
		t.Fatalf("mean = %g", m)
	}
}

func TestObserveDurationNanosecondDomain(t *testing.T) {
	h := NewHistogram(DurationBounds([]time.Duration{time.Microsecond, time.Millisecond}))
	h.ObserveDuration(1234 * time.Nanosecond)
	h.ObserveDuration(-5 * time.Second) // clamped to 0
	s := h.Snapshot()
	if s.Sum != 1234 {
		t.Fatalf("sum = %g, want exactly 1234 (ns domain must not round)", s.Sum)
	}
	if s.Counts[0] != 1 || s.Counts[1] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
}

func TestGeometricDurationBoundsShape(t *testing.T) {
	b := GeometricDurationBounds(time.Microsecond, 100*time.Second, 80)
	if len(b) != 80 {
		t.Fatalf("len = %d, want 80", len(b))
	}
	if b[0] != float64(time.Microsecond) {
		t.Fatalf("b[0] = %g, want 1000", b[0])
	}
	// Last bound lands on 100s up to float accumulation in the ratio walk.
	if got := b[79]; math.Abs(got-100e9) > 1e6 {
		t.Fatalf("b[79] = %g, want ≈ 100e9", got)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d", i)
		}
	}
}

// TestPrometheusGolden pins the exact exposition bytes: deterministic
// family, child and bucket ordering, escaping, histogram suffixes.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", `help with "quotes" and \slash`).Add(7)
	r.GaugeVec("a_depth", "per-queue depth", "queue", "ingest", "batch").With("ingest").Set(2.5)
	h := r.HistogramVec("c_latency_ns", "latency", []float64{1000, 2000}, "stage", "total")
	h.With("total").Observe(1500)
	h.With("total").Observe(500)
	r.CounterFunc("d_sampled_total", "sampled", func() uint64 { return 42 })

	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_depth per-queue depth
# TYPE a_depth gauge
a_depth{queue="batch"} 0
a_depth{queue="ingest"} 2.5
# HELP b_total help with "quotes" and \\slash
# TYPE b_total counter
b_total 7
# HELP c_latency_ns latency
# TYPE c_latency_ns histogram
c_latency_ns_bucket{stage="total",le="1000"} 1
c_latency_ns_bucket{stage="total",le="2000"} 2
c_latency_ns_bucket{stage="total",le="+Inf"} 2
c_latency_ns_sum{stage="total"} 2000
c_latency_ns_count{stage="total"} 2
# HELP d_sampled_total sampled
# TYPE d_sampled_total counter
d_sampled_total 42
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Same registry, second render: byte-identical (ordering is stable).
	var sb2 strings.Builder
	WriteText(&sb2, r)
	if sb.String() != sb2.String() {
		t.Fatal("two renders of the same registry differ")
	}
}

// TestConcurrentHammer drives Inc/Add/Observe from parallel.For workers
// while a reader scrapes — run under -race this is the registry's
// correctness test, and the totals check catches lost updates.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("lat_ns", "", []float64{10, 100, 1000, 10000})
	v := r.CounterVec("ops_total", "", "op", "get", "put")

	const n = 50_000
	done := make(chan struct{})
	go func() { // concurrent scraper
		defer close(done)
		for i := 0; i < 200; i++ {
			var sb strings.Builder
			WriteText(&sb, r)
			s := h.Snapshot()
			var cum uint64
			for _, b := range s.Counts {
				cum += b
			}
			if cum < s.Count {
				t.Errorf("bucket total %d < count %d (count must be read first)", cum, s.Count)
				return
			}
		}
	}()
	parallel.For(n, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c.Inc()
			g.Add(1)
			h.Observe(float64(i % 20000))
			if i%2 == 0 {
				v.With("get").Inc()
			} else {
				v.With("put").Inc()
			}
		}
	})
	<-done
	if c.Value() != n {
		t.Fatalf("counter = %d, want %d", c.Value(), n)
	}
	if g.Value() != n {
		t.Fatalf("gauge = %g, want %d (CAS add lost updates)", g.Value(), n)
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("histogram count = %d, want %d", s.Count, n)
	}
	if got := v.With("get").Value() + v.With("put").Value(); got != n {
		t.Fatalf("vec total = %d, want %d", got, n)
	}
}

// blockingWriter stalls until released — simulating a wedged disk so the
// tracer's never-block guarantee is observable.
type blockingWriter struct {
	release chan struct{}
	wrote   chan struct{}
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	select {
	case w.wrote <- struct{}{}:
	default:
	}
	<-w.release
	return len(p), nil
}

func TestTracerNeverBlocksAndCountsDrops(t *testing.T) {
	bw := &blockingWriter{release: make(chan struct{}), wrote: make(chan struct{}, 1)}
	tr := NewTracer(bw, TracerOptions{Buffer: 4})

	// Overfill: the writer goroutine consumes at most a few records before
	// wedging on Write; everything past buffer+in-flight must drop, and
	// every Emit must return promptly.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			tr.Event("tick")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a stalled writer")
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected drops with a stalled writer and a 4-record buffer")
	}
	close(bw.release)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped()+tr.Written() < 100 {
		t.Fatalf("dropped %d + written %d < 100 emitted", tr.Dropped(), tr.Written())
	}
}

func TestTracerJSONLStream(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb, TracerOptions{})
	tr.Event("gen_start", "gen", "1", "width", "3")
	end := tr.Span("reform")
	end("gen", "2")
	tr.StepRecord("step", 7, 1, 42*time.Millisecond, "loss", "0.5")
	var nilTr *Tracer
	nilTr.Event("ignored") // nil-safe
	nilTr.Span("ignored")()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), sb.String())
	}
	var recs []Record
	for _, ln := range lines {
		var r Record
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		recs = append(recs, r)
	}
	if recs[0].Kind != KindEvent || recs[0].Name != "gen_start" || recs[0].Attrs["width"] != "3" {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Kind != KindSpan || recs[1].Name != "reform" || recs[1].Dur < 0 || recs[1].Attrs["gen"] != "2" {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if recs[2].Kind != KindStep || recs[2].Step != 7 || recs[2].Epoch != 1 || recs[2].Dur != int64(42*time.Millisecond) {
		t.Fatalf("record 2 = %+v", recs[2])
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].TS < recs[i-1].TS {
			t.Fatalf("timestamps not monotone: %d after %d", recs[i].TS, recs[i-1].TS)
		}
	}
}

func TestSpanGroupStats(t *testing.T) {
	now := time.Unix(0, 0)
	g := NewSpanGroupWithClock(func() time.Time { return now })
	end := g.Span("forward")
	now = now.Add(30 * time.Millisecond)
	end()
	g.Add("backward", 60*time.Millisecond)
	g.Add("backward", 60*time.Millisecond)
	g.Add("optim", 10*time.Millisecond)

	if g.Total("backward") != 120*time.Millisecond || g.Count("backward") != 2 {
		t.Fatalf("backward total=%v count=%d", g.Total("backward"), g.Count("backward"))
	}
	st := g.Stats()
	if len(st) != 3 || st[0].Stage != "backward" || st[1].Stage != "forward" || st[2].Stage != "optim" {
		t.Fatalf("stats order = %+v", st)
	}
	if st[0].Mean != 60*time.Millisecond {
		t.Fatalf("backward mean = %v", st[0].Mean)
	}
	if got := st[0].Fraction; math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("backward fraction = %g, want 0.75", got)
	}
	g.Reset()
	if len(g.Stats()) != 0 {
		t.Fatal("Reset left stages behind")
	}
}

func TestSpanGroupEmitsToTracer(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb, TracerOptions{})
	g := NewSpanGroup()
	g.SetTracer(tr)
	g.Add("eval", 5*time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var r Record
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &r); err != nil {
		t.Fatalf("bad span record: %v", err)
	}
	if r.Kind != KindSpan || r.Name != "eval" || r.Dur != int64(5*time.Millisecond) {
		t.Fatalf("span record = %+v", r)
	}
}
