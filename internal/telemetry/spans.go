package telemetry

import (
	"sync"
	"time"
)

// SpanGroup aggregates named spans into per-stage totals and counts — the
// shared timing primitive behind internal/profiler's bottleneck reports.
// It is safe for concurrent use; the clock is injectable for deterministic
// tests, and an attached Tracer receives every ended span as a trace
// record.
type SpanGroup struct {
	mu     sync.Mutex
	totals map[string]time.Duration
	counts map[string]int
	clock  func() time.Time
	tracer *Tracer
}

// NewSpanGroup returns an empty span group using the wall clock.
func NewSpanGroup() *SpanGroup {
	return NewSpanGroupWithClock(time.Now)
}

// NewSpanGroupWithClock returns a span group reading time from clock — for
// tests that need deterministic durations.
func NewSpanGroupWithClock(clock func() time.Time) *SpanGroup {
	return &SpanGroup{
		totals: map[string]time.Duration{},
		counts: map[string]int{},
		clock:  clock,
	}
}

// SetTracer attaches (or with nil detaches) a tracer; every subsequently
// ended span is also emitted as a KindSpan trace record.
func (g *SpanGroup) SetTracer(t *Tracer) {
	g.mu.Lock()
	g.tracer = t
	g.mu.Unlock()
}

// Span starts timing stage and returns the function that ends it:
//
//	defer g.Span("forward")()
func (g *SpanGroup) Span(stage string) func() {
	t0 := g.clock()
	return func() {
		g.Add(stage, g.clock().Sub(t0))
	}
}

// Add records one completed span of the given duration against stage.
func (g *SpanGroup) Add(stage string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	g.mu.Lock()
	g.totals[stage] += d
	g.counts[stage]++
	tr := g.tracer
	g.mu.Unlock()
	tr.Emit(Record{Kind: KindSpan, Name: stage, Dur: d.Nanoseconds()})
}

// Total returns the accumulated duration for stage.
func (g *SpanGroup) Total(stage string) time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.totals[stage]
}

// Count returns how many spans were recorded for stage.
func (g *SpanGroup) Count(stage string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.counts[stage]
}

// SpanStat is the aggregate for one stage. Fraction is the stage's share
// of the group's total time.
type SpanStat struct {
	Stage    string
	Total    time.Duration
	Count    int
	Mean     time.Duration
	Fraction float64
}

// Stats returns per-stage aggregates sorted by total descending, ties
// broken by stage name — a stable order for reports and assertions.
func (g *SpanGroup) Stats() []SpanStat {
	g.mu.Lock()
	var grand time.Duration
	for _, d := range g.totals {
		grand += d
	}
	out := make([]SpanStat, 0, len(g.totals))
	for stage, total := range g.totals {
		s := SpanStat{Stage: stage, Total: total, Count: g.counts[stage]}
		if s.Count > 0 {
			s.Mean = total / time.Duration(s.Count)
		}
		if grand > 0 {
			s.Fraction = float64(total) / float64(grand)
		}
		out = append(out, s)
	}
	g.mu.Unlock()
	sortSpanStats(out)
	return out
}

func sortSpanStats(out []SpanStat) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && spanStatLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

func spanStatLess(a, b SpanStat) bool {
	if a.Total != b.Total {
		return a.Total > b.Total
	}
	return a.Stage < b.Stage
}

// Reset clears all accumulated stages.
func (g *SpanGroup) Reset() {
	g.mu.Lock()
	g.totals = map[string]time.Duration{}
	g.counts = map[string]int{}
	g.mu.Unlock()
}
