package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry owns a namespace of metrics. Registration (Counter, Gauge,
// Histogram and their Vec/Func variants) is get-or-create and safe from any
// goroutine; re-registering a name returns the existing collector, so
// package-level instrumentation and late wiring cannot race. Registering a
// name under a different type or shape panics — that is a programming
// error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// std is the process-wide default registry.
var std = NewRegistry()

// Default returns the process-wide registry: the one the binaries expose on
// their /metrics listeners and the one package-level instrumentation
// (allreduce, dist workers) registers into.
func Default() *Registry { return std }

// metricType is the Prometheus exposition type of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// family is one metric name: either a single unlabelled child or a fixed,
// pre-registered set of labelled children.
type family struct {
	name  string
	help  string
	typ   metricType
	label string // label key, "" for unlabelled families

	// Exactly one of the following is populated per child kind.
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	counterFn  func() uint64
	gaugeFn    func() float64

	bounds []float64 // histogram families: the shared bucket bounds
}

// lookup returns the family for name, creating it with mk on first use and
// panicking when an existing family has a different type or label key.
func (r *Registry) lookup(name, help string, typ metricType, label string, mk func(*family)) *family {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, label: label}
		mk(f)
		r.families[name] = f
		return f
	}
	if f.typ != typ || f.label != label {
		panic(fmt.Sprintf("telemetry: %s already registered as %s with label %q, want %s with label %q",
			name, f.typ, f.label, typ, label))
	}
	return f
}

// Counter is a monotone event count. Inc/Add are single atomic adds — safe
// and allocation-free on any hot path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers (or fetches) the unlabelled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, typeCounter, "", func(f *family) {
		f.counters = map[string]*Counter{"": {}}
	})
	if f.counterFn != nil {
		panic(fmt.Sprintf("telemetry: %s is a CounterFunc", name))
	}
	return f.counters[""]
}

// CounterFunc registers a counter whose value is sampled from fn at read
// time — for monotone counts another subsystem already maintains.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.lookup(name, help, typeCounter, "", func(f *family) {
		f.counterFn = fn
	})
}

// CounterVec registers the counter family name with a fixed label key and
// the full set of label values. Children are created now; With resolves one.
func (r *Registry) CounterVec(name, help, label string, values ...string) *CounterVec {
	if label == "" || len(values) == 0 {
		panic("telemetry: CounterVec needs a label key and at least one value")
	}
	f := r.lookup(name, help, typeCounter, label, func(f *family) {
		f.counters = map[string]*Counter{}
		for _, v := range values {
			f.counters[v] = &Counter{}
		}
	})
	for _, v := range values {
		if _, ok := f.counters[v]; !ok {
			panic(fmt.Sprintf("telemetry: %s re-registered with new label value %q", name, v))
		}
	}
	return &CounterVec{f: f}
}

// CounterVec is a fixed set of labelled counters.
type CounterVec struct{ f *family }

// With returns the child for the pre-registered label value.
func (v *CounterVec) With(value string) *Counter {
	c, ok := v.f.counters[value]
	if !ok {
		panic(fmt.Sprintf("telemetry: %s has no label value %q", v.f.name, value))
	}
	return c
}

// Gauge is an instantaneous float64 value. All methods are lock-free
// (float64 bit-pattern CAS) and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or fetches) the unlabelled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, typeGauge, "", func(f *family) {
		f.gauges = map[string]*Gauge{"": {}}
	})
	if f.gaugeFn != nil {
		panic(fmt.Sprintf("telemetry: %s is a GaugeFunc", name))
	}
	return f.gauges[""]
}

// GaugeFunc registers a gauge sampled from fn at read time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.lookup(name, help, typeGauge, "", func(f *family) {
		f.gaugeFn = fn
	})
}

// GaugeVec registers the gauge family name with a fixed label set.
func (r *Registry) GaugeVec(name, help, label string, values ...string) *GaugeVec {
	if label == "" || len(values) == 0 {
		panic("telemetry: GaugeVec needs a label key and at least one value")
	}
	f := r.lookup(name, help, typeGauge, label, func(f *family) {
		f.gauges = map[string]*Gauge{}
		for _, v := range values {
			f.gauges[v] = &Gauge{}
		}
	})
	for _, v := range values {
		if _, ok := f.gauges[v]; !ok {
			panic(fmt.Sprintf("telemetry: %s re-registered with new label value %q", name, v))
		}
	}
	return &GaugeVec{f: f}
}

// GaugeVec is a fixed set of labelled gauges.
type GaugeVec struct{ f *family }

// With returns the child for the pre-registered label value.
func (v *GaugeVec) With(value string) *Gauge {
	g, ok := v.f.gauges[value]
	if !ok {
		panic(fmt.Sprintf("telemetry: %s has no label value %q", v.f.name, value))
	}
	return g
}

// Histogram registers (or fetches) the unlabelled histogram name with the
// given bucket upper bounds (ascending; an implicit +Inf bucket is added).
// Re-registration must pass identical bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.lookup(name, help, typeHistogram, "", func(f *family) {
		f.bounds = checkBounds(name, bounds)
		f.histograms = map[string]*Histogram{"": newHistogram(f.bounds)}
	})
	sameBounds(name, f.bounds, bounds)
	return f.histograms[""]
}

// HistogramVec registers the histogram family name with a fixed label set;
// every child shares the bucket bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, label string, values ...string) *HistogramVec {
	if label == "" || len(values) == 0 {
		panic("telemetry: HistogramVec needs a label key and at least one value")
	}
	f := r.lookup(name, help, typeHistogram, label, func(f *family) {
		f.bounds = checkBounds(name, bounds)
		f.histograms = map[string]*Histogram{}
		for _, v := range values {
			f.histograms[v] = newHistogram(f.bounds)
		}
	})
	sameBounds(name, f.bounds, bounds)
	for _, v := range values {
		if _, ok := f.histograms[v]; !ok {
			panic(fmt.Sprintf("telemetry: %s re-registered with new label value %q", name, v))
		}
	}
	return &HistogramVec{f: f}
}

// HistogramVec is a fixed set of labelled histograms.
type HistogramVec struct{ f *family }

// With returns the child for the pre-registered label value.
func (v *HistogramVec) With(value string) *Histogram {
	h, ok := v.f.histograms[value]
	if !ok {
		panic(fmt.Sprintf("telemetry: %s has no label value %q", v.f.name, value))
	}
	return h
}

func checkBounds(name string, bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: %s needs at least one bucket bound", name))
	}
	out := append([]float64(nil), bounds...)
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			panic(fmt.Sprintf("telemetry: %s bucket bounds not ascending at %d", name, i))
		}
	}
	return out
}

func sameBounds(name string, have, want []float64) {
	if len(want) == 0 {
		return // fetch-only callers may omit bounds they don't re-specify
	}
	if len(have) != len(want) {
		panic(fmt.Sprintf("telemetry: %s re-registered with %d bounds, have %d", name, len(want), len(have)))
	}
	for i := range have {
		if have[i] != want[i] {
			panic(fmt.Sprintf("telemetry: %s re-registered with different bound %d", name, i))
		}
	}
}

// sortedFamilies returns the families sorted by name — the deterministic
// exposition and snapshot order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// childValues returns a family's label values in sorted order ("" for the
// unlabelled singleton).
func (f *family) childValues() []string {
	var vals []string
	switch {
	case f.counters != nil:
		for v := range f.counters {
			vals = append(vals, v)
		}
	case f.gauges != nil:
		for v := range f.gauges {
			vals = append(vals, v)
		}
	case f.histograms != nil:
		for v := range f.histograms {
			vals = append(vals, v)
		}
	}
	sort.Strings(vals)
	return vals
}
