package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugMux returns an http.ServeMux exposing the registry at /metrics and
// the standard pprof endpoints under /debug/pprof/ — the common debug
// surface the long-running binaries mount behind their -metrics-addr and
// -pprof flags.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	RegisterPprof(mux)
	return mux
}

// RegisterPprof mounts the net/http/pprof handlers on mux without relying
// on the package's DefaultServeMux side effects.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeDebug starts the debug listener on addr in a background goroutine
// and returns the bound address (useful with ":0") or an error if the
// listen fails. The server runs until the process exits.
func ServeDebug(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: DebugMux(r)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
