// Package parallel is the multi-core compute engine underneath the nn
// kernels: a fork-join worker pool that partitions index ranges across a
// configurable worker budget. The budget defaults to GOMAXPROCS and can be
// overridden globally (SetDefaultWorkers, or the REPRO_WORKERS environment
// variable) or per call (ForWorkers), so higher layers — one mirrored
// replica per simulated GPU, several trials per tuning run — can divide the
// machine instead of oversubscribing it.
//
// Workers claim fixed-size chunks from a shared atomic counter, so the
// partition of [0, n) into chunks depends only on n and grain, never on the
// worker count or scheduling order. Kernels that write disjoint chunks are
// therefore bit-for-bit deterministic for any worker budget.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable consulted at startup for the
// default worker budget (a positive integer; anything else is ignored).
const EnvWorkers = "REPRO_WORKERS"

var defaultWorkers atomic.Int64

func init() {
	w := runtime.GOMAXPROCS(0)
	if s := os.Getenv(EnvWorkers); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			w = v
		}
	}
	defaultWorkers.Store(int64(w))
}

// DefaultWorkers returns the current global worker budget.
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// SetDefaultWorkers sets the global worker budget; n <= 0 resets it to
// GOMAXPROCS. It returns the budget now in effect.
func SetDefaultWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	defaultWorkers.Store(int64(n))
	return n
}

// Resolve maps a per-call or per-layer budget to an effective worker count:
// positive values pass through, everything else means the global default.
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	return DefaultWorkers()
}

// Share divides a total worker budget (0 = the global default) evenly among
// parts concurrent consumers, never returning less than 1. Mirrored replicas
// use it so R replica goroutines running kernels with Share(budget, R)
// workers each keep the whole step at ~budget cores instead of R×budget.
//
// Share floors the division, so total%parts workers are left idle; consumers
// that can accept unequal shares should use ShareN instead.
func Share(total, parts int) int {
	if parts < 1 {
		parts = 1
	}
	w := Resolve(total) / parts
	if w < 1 {
		w = 1
	}
	return w
}

// ShareN divides a total worker budget (0 = the global default) among parts
// concurrent consumers with no idle remainder: the first Resolve(total)%parts
// shares get one extra worker, so shares differ by at most one and sum to
// exactly Resolve(total) whenever Resolve(total) >= parts. Every share is at
// least 1. Mirrored replicas and experiment-parallel trials index the
// returned slice by their slot so a 7-core budget over 2 replicas runs 4+3
// instead of Share's 3+3 with one core idle.
func ShareN(total, parts int) []int {
	if parts < 1 {
		parts = 1
	}
	w := Resolve(total)
	base := w / parts
	rem := w % parts
	shares := make([]int, parts)
	for i := range shares {
		s := base
		if i < rem {
			s++
		}
		if s < 1 {
			s = 1
		}
		shares[i] = s
	}
	return shares
}

// For partitions [0, n) into chunks of at most grain indices and calls
// fn(lo, hi) for every chunk using the default worker budget. It blocks
// until every chunk is done. fn must treat [lo, hi) as its exclusive
// property; chunks never overlap.
func For(n, grain int, fn func(lo, hi int)) {
	ForWorkers(0, n, grain, fn)
}

// ForWorkers is For with an explicit worker budget (0 = global default).
//
// The chunk decomposition depends only on n and grain, and workers pull
// chunk indices from an atomic counter, so every chunk runs exactly once
// regardless of the budget. With an effective budget of one worker (or a
// single chunk) fn runs on the calling goroutine with no synchronization.
// A panic in any chunk is re-raised on the calling goroutine after all
// workers have drained.
func ForWorkers(workers, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	w := Resolve(workers)
	if w > chunks {
		w = chunks
	}
	if w <= 1 {
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[panicValue]
	)
	body := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicValue{val: r})
			}
		}()
		for {
			c := next.Add(1) - 1
			if c >= int64(chunks) || panicked.Load() != nil {
				return
			}
			lo := int(c) * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	wg.Add(w)
	for i := 1; i < w; i++ {
		go body()
	}
	body() // the caller is worker 0
	wg.Wait()
	if p := panicked.Load(); p != nil {
		// Re-raise the original value so recover-based handlers see the
		// same panic regardless of the worker budget.
		panic(p.val)
	}
}

// panicValue boxes a recovered panic for transport across goroutines.
type panicValue struct{ val any }
