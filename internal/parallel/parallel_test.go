package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForCoversRangeExactlyOnce checks that every index in [0, n) is visited
// exactly once for a grid of sizes, grains and worker budgets.
func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, grain := range []int{0, 1, 3, 64, 5000} {
			for _, workers := range []int{1, 2, 3, 8, 100} {
				hits := make([]int32, n+1)
				ForWorkers(workers, n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("n=%d grain=%d workers=%d: bad chunk [%d,%d)", n, grain, workers, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i := 0; i < n; i++ {
					if hits[i] != 1 {
						t.Fatalf("n=%d grain=%d workers=%d: index %d visited %d times", n, grain, workers, i, hits[i])
					}
				}
			}
		}
	}
}

// TestForChunkBoundaries checks the chunk decomposition is exactly the
// grain-sized partition of [0, n), independent of the worker budget.
func TestForChunkBoundaries(t *testing.T) {
	const n, grain = 103, 10
	for _, workers := range []int{1, 4} {
		var starts sync32Set
		ForWorkers(workers, n, grain, func(lo, hi int) {
			if lo%grain != 0 {
				t.Errorf("workers=%d: chunk start %d not aligned to grain %d", workers, lo, grain)
			}
			want := lo + grain
			if want > n {
				want = n
			}
			if hi != want {
				t.Errorf("workers=%d: chunk [%d,%d), want [%d,%d)", workers, lo, hi, lo, want)
			}
			starts.add(int32(lo))
		})
		if got := starts.len(); got != (n+grain-1)/grain {
			t.Errorf("workers=%d: %d chunks, want %d", workers, got, (n+grain-1)/grain)
		}
	}
}

// TestForPanicPropagates checks a worker panic resurfaces on the caller
// with the original panic value, for any worker budget.
func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if r != "boom" {
					t.Fatalf("workers=%d: panic value %v, want original value \"boom\"", workers, r)
				}
			}()
			ForWorkers(workers, 100, 1, func(lo, hi int) {
				if lo == 50 {
					panic("boom")
				}
			})
		}()
	}
}

func TestDefaultWorkers(t *testing.T) {
	orig := DefaultWorkers()
	defer SetDefaultWorkers(orig)

	if got := SetDefaultWorkers(3); got != 3 || DefaultWorkers() != 3 {
		t.Fatalf("SetDefaultWorkers(3) = %d, DefaultWorkers() = %d", got, DefaultWorkers())
	}
	if got := SetDefaultWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetDefaultWorkers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if Resolve(5) != 5 {
		t.Fatalf("Resolve(5) = %d", Resolve(5))
	}
	if Resolve(0) != DefaultWorkers() || Resolve(-2) != DefaultWorkers() {
		t.Fatalf("Resolve should fall back to the default budget")
	}
}

func TestShare(t *testing.T) {
	cases := []struct{ total, parts, want int }{
		{8, 2, 4},
		{8, 3, 2},
		{2, 4, 1}, // never below one worker
		{5, 0, 5}, // parts clamped to 1
	}
	for _, c := range cases {
		if got := Share(c.total, c.parts); got != c.want {
			t.Errorf("Share(%d, %d) = %d, want %d", c.total, c.parts, got, c.want)
		}
	}
	orig := DefaultWorkers()
	defer SetDefaultWorkers(orig)
	SetDefaultWorkers(6)
	if got := Share(0, 2); got != 3 {
		t.Errorf("Share(0, 2) with default 6 = %d, want 3", got)
	}
}

func TestShareN(t *testing.T) {
	cases := []struct {
		total, parts int
		want         []int
	}{
		{7, 2, []int{4, 3}},       // remainder goes to the first shares
		{8, 2, []int{4, 4}},       // even split unchanged
		{7, 3, []int{3, 2, 2}},    // one extra share
		{2, 4, []int{1, 1, 1, 1}}, // more parts than workers: min 1 each
		{5, 1, []int{5}},          // single consumer gets everything
		{3, 0, []int{3}},          // parts clamped to 1
	}
	for _, tc := range cases {
		got := ShareN(tc.total, tc.parts)
		if len(got) != len(tc.want) {
			t.Fatalf("ShareN(%d, %d) = %v, want %v", tc.total, tc.parts, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("ShareN(%d, %d) = %v, want %v", tc.total, tc.parts, got, tc.want)
			}
		}
	}

	// Whenever the budget covers the parts, the shares must sum to exactly
	// the budget — the no-idle-cores property Share lacks.
	for total := 1; total <= 24; total++ {
		for parts := 1; parts <= total; parts++ {
			sum := 0
			for _, s := range ShareN(total, parts) {
				sum += s
			}
			if sum != total {
				t.Fatalf("ShareN(%d, %d) sums to %d", total, parts, sum)
			}
		}
	}

	orig := DefaultWorkers()
	defer SetDefaultWorkers(orig)
	SetDefaultWorkers(5)
	if got := ShareN(0, 2); got[0] != 3 || got[1] != 2 {
		t.Errorf("ShareN(0, 2) with default 5 = %v, want [3 2]", got)
	}
}

// sync32Set is a tiny concurrent set for test bookkeeping.
type sync32Set struct {
	mu   sync.Mutex
	vals map[int32]bool
}

func (s *sync32Set) add(v int32) {
	s.mu.Lock()
	if s.vals == nil {
		s.vals = map[int32]bool{}
	}
	s.vals[v] = true
	s.mu.Unlock()
}

func (s *sync32Set) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}
