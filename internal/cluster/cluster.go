// Package cluster models the resource layer of the paper's deployment: a
// grid of HPC nodes with four GPUs each (MareNostrum-CTE), the Ray.Cluster
// analogue. It tracks GPU allocation for trial placement and exposes the
// topology facts (which GPUs share a node) the performance model needs.
package cluster

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/netsim"
)

// Cluster is a homogeneous multi-node multi-GPU machine.
type Cluster struct {
	NodeCount   int
	GPUsPerNode int
	Fabric      netsim.Fabric
	Device      gpusim.Device
}

// MareNostrum returns the paper's cluster with the given node count:
// IBM Power9 nodes with 4 NVIDIA V100 16 GB GPUs, InfiniBand interconnect.
func MareNostrum(nodes int) (*Cluster, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: node count must be positive, got %d", nodes)
	}
	return &Cluster{
		NodeCount:   nodes,
		GPUsPerNode: 4,
		Fabric:      netsim.MareNostrum(),
		Device:      gpusim.V100(),
	}, nil
}

// ForGPUs returns the smallest MareNostrum cluster holding n GPUs, matching
// the paper's scaling ladder (1..32 GPUs on 4-GPU nodes).
func ForGPUs(n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: GPU count must be positive, got %d", n)
	}
	nodes := (n + 3) / 4
	return MareNostrum(nodes)
}

// TotalGPUs returns the number of GPUs in the cluster.
func (c *Cluster) TotalGPUs() int { return c.NodeCount * c.GPUsPerNode }

// NodeOf returns the node index hosting the given GPU.
func (c *Cluster) NodeOf(gpu int) int {
	if gpu < 0 || gpu >= c.TotalGPUs() {
		panic(fmt.Sprintf("cluster: gpu %d out of range [0,%d)", gpu, c.TotalGPUs()))
	}
	return gpu / c.GPUsPerNode
}

// NodesSpanned returns how many nodes a contiguous allocation of n GPUs
// (packed placement) occupies.
func (c *Cluster) NodesSpanned(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + c.GPUsPerNode - 1) / c.GPUsPerNode
}

// PlacementPolicy selects how trials are laid onto GPUs.
type PlacementPolicy int

// Placement policies.
const (
	// Pack fills each node before opening the next (Ray's default
	// locality-aware packing).
	Pack PlacementPolicy = iota
	// Spread round-robins across nodes, minimizing per-node contention.
	Spread
)

// Alloc tracks which GPUs are busy.
type Alloc struct {
	c      *Cluster
	busy   []bool
	byNode []int
	policy PlacementPolicy
}

// NewAlloc returns an empty allocation tracker with the given policy.
func (c *Cluster) NewAlloc(policy PlacementPolicy) *Alloc {
	return &Alloc{
		c:      c,
		busy:   make([]bool, c.TotalGPUs()),
		byNode: make([]int, c.NodeCount),
		policy: policy,
	}
}

// Acquire reserves one free GPU according to the policy. It returns the GPU
// id and false when the cluster is fully busy.
func (a *Alloc) Acquire() (int, bool) {
	switch a.policy {
	case Spread:
		// Pick the least-loaded node with a free GPU.
		bestNode, bestLoad := -1, 1<<30
		for n := 0; n < a.c.NodeCount; n++ {
			if a.byNode[n] < a.c.GPUsPerNode && a.byNode[n] < bestLoad {
				bestNode, bestLoad = n, a.byNode[n]
			}
		}
		if bestNode < 0 {
			return 0, false
		}
		for g := bestNode * a.c.GPUsPerNode; g < (bestNode+1)*a.c.GPUsPerNode; g++ {
			if !a.busy[g] {
				a.take(g)
				return g, true
			}
		}
		return 0, false
	default: // Pack
		for g := range a.busy {
			if !a.busy[g] {
				a.take(g)
				return g, true
			}
		}
		return 0, false
	}
}

func (a *Alloc) take(g int) {
	a.busy[g] = true
	a.byNode[a.c.NodeOf(g)]++
}

// Release frees a previously acquired GPU.
func (a *Alloc) Release(g int) {
	if g < 0 || g >= len(a.busy) || !a.busy[g] {
		panic(fmt.Sprintf("cluster: releasing GPU %d that is not held", g))
	}
	a.busy[g] = false
	a.byNode[a.c.NodeOf(g)]--
}

// Active returns the number of busy GPUs.
func (a *Alloc) Active() int {
	n := 0
	for _, b := range a.busy {
		if b {
			n++
		}
	}
	return n
}

// ActiveOnNode returns the busy-GPU count of the node hosting GPU g.
func (a *Alloc) ActiveOnNode(g int) int { return a.byNode[a.c.NodeOf(g)] }

// FreeGPUs returns the number of idle GPUs.
func (a *Alloc) FreeGPUs() int { return len(a.busy) - a.Active() }
