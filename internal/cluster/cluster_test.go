package cluster

import (
	"testing"
	"testing/quick"
)

func TestMareNostrumTopology(t *testing.T) {
	c, err := MareNostrum(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalGPUs() != 32 {
		t.Fatalf("8 nodes × 4 GPUs = 32, got %d", c.TotalGPUs())
	}
	if c.NodeOf(0) != 0 || c.NodeOf(3) != 0 || c.NodeOf(4) != 1 || c.NodeOf(31) != 7 {
		t.Fatal("NodeOf mapping wrong")
	}
}

func TestMareNostrumRejectsBadNodes(t *testing.T) {
	if _, err := MareNostrum(0); err == nil {
		t.Fatal("0 nodes must error")
	}
}

func TestForGPUs(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 4: 1, 5: 2, 8: 2, 12: 3, 16: 4, 32: 8}
	for gpus, nodes := range cases {
		c, err := ForGPUs(gpus)
		if err != nil {
			t.Fatal(err)
		}
		if c.NodeCount != nodes {
			t.Fatalf("%d GPUs: %d nodes, want %d", gpus, c.NodeCount, nodes)
		}
	}
	if _, err := ForGPUs(0); err == nil {
		t.Fatal("0 GPUs must error")
	}
}

func TestNodeOfPanicsOutOfRange(t *testing.T) {
	c, _ := MareNostrum(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.NodeOf(4)
}

func TestNodesSpanned(t *testing.T) {
	c, _ := MareNostrum(8)
	cases := map[int]int{0: 0, 1: 1, 4: 1, 5: 2, 8: 2, 12: 3, 32: 8}
	for n, want := range cases {
		if got := c.NodesSpanned(n); got != want {
			t.Fatalf("NodesSpanned(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAllocPackFillsNodeFirst(t *testing.T) {
	c, _ := MareNostrum(2)
	a := c.NewAlloc(Pack)
	var got []int
	for i := 0; i < 5; i++ {
		g, ok := a.Acquire()
		if !ok {
			t.Fatal("acquire failed with free GPUs")
		}
		got = append(got, g)
	}
	// Pack policy: GPUs 0-3 on node 0, then 4 on node 1.
	for i, want := range []int{0, 1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("pack order %v", got)
		}
	}
	if a.ActiveOnNode(0) != 4 || a.ActiveOnNode(4) != 1 {
		t.Fatal("per-node accounting wrong")
	}
}

func TestAllocSpreadBalancesNodes(t *testing.T) {
	c, _ := MareNostrum(2)
	a := c.NewAlloc(Spread)
	nodes := map[int]int{}
	for i := 0; i < 4; i++ {
		g, ok := a.Acquire()
		if !ok {
			t.Fatal("acquire failed")
		}
		nodes[c.NodeOf(g)]++
	}
	if nodes[0] != 2 || nodes[1] != 2 {
		t.Fatalf("spread placed %v, want 2 per node", nodes)
	}
}

func TestAllocExhaustion(t *testing.T) {
	c, _ := MareNostrum(1)
	a := c.NewAlloc(Pack)
	for i := 0; i < 4; i++ {
		if _, ok := a.Acquire(); !ok {
			t.Fatal("early exhaustion")
		}
	}
	if _, ok := a.Acquire(); ok {
		t.Fatal("acquire must fail when full")
	}
	if a.FreeGPUs() != 0 || a.Active() != 4 {
		t.Fatal("accounting wrong at exhaustion")
	}
}

func TestReleaseRecycles(t *testing.T) {
	c, _ := MareNostrum(1)
	a := c.NewAlloc(Pack)
	g, _ := a.Acquire()
	a.Release(g)
	if a.Active() != 0 {
		t.Fatal("release did not free")
	}
	g2, ok := a.Acquire()
	if !ok || g2 != g {
		t.Fatalf("expected to re-acquire GPU %d, got %d", g, g2)
	}
}

func TestReleasePanicsOnDoubleFree(t *testing.T) {
	c, _ := MareNostrum(1)
	a := c.NewAlloc(Pack)
	g, _ := a.Acquire()
	a.Release(g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Release(g)
}

// Property: acquire/release keeps Active() consistent for any sequence.
func TestPropertyAllocConsistency(t *testing.T) {
	f := func(ops []bool) bool {
		c, _ := MareNostrum(2)
		a := c.NewAlloc(Pack)
		var held []int
		for _, acquire := range ops {
			if acquire {
				if g, ok := a.Acquire(); ok {
					held = append(held, g)
				}
			} else if len(held) > 0 {
				a.Release(held[len(held)-1])
				held = held[:len(held)-1]
			}
		}
		if a.Active() != len(held) {
			return false
		}
		sum := 0
		for n := 0; n < c.NodeCount; n++ {
			sum += a.byNode[n]
		}
		return sum == len(held)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
