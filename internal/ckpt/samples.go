package ckpt

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/record"
	"repro/internal/volume"
)

// Sample-stream checkpoints persist a mutable sample collection — the
// online continual-learning replay buffer — together with bit-exact float64
// controller state, so a restarted process resumes with the identical
// buffer contents and eviction cursor. The on-disk form is one TFRecord
// stream: a leading state payload (the session-state codec's uint64 bit
// patterns under "state:" keys) followed by one record.MarshalSample
// payload per sample, in buffer order.

// sampleStreamMarker tags the leading payload so model checkpoints (whose
// features carry param:/meta- keys instead) are rejected on load.
const sampleStreamMarker = "sample-stream"

// SaveSamples writes the state map and samples to w.
func SaveSamples(w io.Writer, samples []*volume.Sample, state map[string][]float64) error {
	f := record.NewFeatures()
	f.AddInts(sampleStreamMarker, []int64{int64(len(samples))})
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vals := state[k]
		bits := make([]int64, len(vals))
		for i, v := range vals {
			bits[i] = int64(math.Float64bits(v))
		}
		f.AddInts("state:"+k, bits)
	}
	rw := record.NewWriter(w)
	if err := rw.Write(f.Marshal()); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return record.WriteSamples(w, samples)
}

// LoadSamples reads back a stream written by SaveSamples: the samples in
// their stored order and the state map, every float64 bit-exact.
func LoadSamples(r io.Reader) ([]*volume.Sample, map[string][]float64, error) {
	rr := record.NewReader(r)
	payload, err := rr.Next()
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: sample stream has no state payload: %w", err)
	}
	f, err := record.Unmarshal(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: %w", err)
	}
	if _, ok := f.Ints[sampleStreamMarker]; !ok {
		return nil, nil, fmt.Errorf("ckpt: not a sample-stream checkpoint (marker missing)")
	}
	state := map[string][]float64{}
	for key, bits := range f.Ints {
		if key == sampleStreamMarker {
			continue
		}
		name, ok := strings.CutPrefix(key, "state:")
		if !ok {
			return nil, nil, fmt.Errorf("ckpt: not a sample-stream checkpoint (leading payload has %q)", key)
		}
		vals := make([]float64, len(bits))
		for i, b := range bits {
			vals[i] = math.Float64frombits(uint64(b))
		}
		state[name] = vals
	}
	samples, err := record.ReadSamples(r)
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: %w", err)
	}
	return samples, state, nil
}

// SaveSamplesFile writes a sample-stream checkpoint to path atomically.
func SaveSamplesFile(path string, samples []*volume.Sample, state map[string][]float64) error {
	return writeFileAtomic(path, func(f io.Writer) error { return SaveSamples(f, samples, state) })
}

// LoadSamplesFile restores a sample-stream checkpoint from path.
func LoadSamplesFile(path string) ([]*volume.Sample, map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	return LoadSamples(f)
}
