package ckpt

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/msd"
	"repro/internal/volume"
)

func bufferSamples(t *testing.T, n int) []*volume.Sample {
	t.Helper()
	cfg := msd.Config{Cases: n, D: 8, H: 8, W: 8, Seed: 31}
	out := make([]*volume.Sample, n)
	for i := range out {
		s, err := volume.Preprocess(msd.GenerateCase(cfg, i), 2)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

func TestSampleStreamRoundTrip(t *testing.T) {
	samples := bufferSamples(t, 3)
	state := map[string][]float64{
		"buffer.seen": {12345678901}, // past float32's 2^24: must stay bit-exact
		"buffer.caps": {64, math.Pi, math.Inf(1)},
	}
	path := filepath.Join(t.TempDir(), "buffer.ckpt")
	if err := SaveSamplesFile(path, samples, state); err != nil {
		t.Fatal(err)
	}

	got, gotState, err := LoadSamplesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("loaded %d samples, want %d", len(got), len(samples))
	}
	for i, s := range samples {
		g := got[i]
		if g.Name != s.Name {
			t.Fatalf("sample %d name %q, want %q (order must be preserved)", i, g.Name, s.Name)
		}
		if !g.Input.SameShape(s.Input) || !g.Mask.SameShape(s.Mask) {
			t.Fatalf("sample %d shape changed", i)
		}
		for j, v := range s.Input.Data() {
			if g.Input.Data()[j] != v {
				t.Fatalf("sample %d input voxel %d: %v != %v", i, j, g.Input.Data()[j], v)
			}
		}
		for j, v := range s.Mask.Data() {
			if g.Mask.Data()[j] != v {
				t.Fatalf("sample %d mask voxel %d: %v != %v", i, j, g.Mask.Data()[j], v)
			}
		}
	}
	if len(gotState) != len(state) {
		t.Fatalf("state keys %d, want %d", len(gotState), len(state))
	}
	for k, vals := range state {
		g := gotState[k]
		if len(g) != len(vals) {
			t.Fatalf("state %q length %d, want %d", k, len(g), len(vals))
		}
		for i, v := range vals {
			if math.Float64bits(g[i]) != math.Float64bits(v) {
				t.Fatalf("state %q[%d] not bit-exact: %v != %v", k, i, g[i], v)
			}
		}
	}
}

func TestSampleStreamEmptyBuffer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ckpt")
	if err := SaveSamplesFile(path, nil, map[string][]float64{"buffer.seen": {0}}); err != nil {
		t.Fatal(err)
	}
	samples, state, err := LoadSamplesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 0 {
		t.Fatalf("empty buffer loaded %d samples", len(samples))
	}
	if v := state["buffer.seen"]; len(v) != 1 || v[0] != 0 {
		t.Fatalf("state %v", state)
	}
}

func TestSampleStreamRejectsForeignCheckpoint(t *testing.T) {
	// A model checkpoint is a record stream too, but its leading payload is
	// not a sample-stream state payload — loading must fail cleanly, not
	// misinterpret parameters as buffer contents.
	path := filepath.Join(t.TempDir(), "model.ckpt")
	s := bufferSamples(t, 1)[0]
	if err := SaveSamplesFile(path, []*volume.Sample{s}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSamplesFile(path); err != nil {
		t.Fatalf("round trip with empty state failed: %v", err)
	}

	modelPath := filepath.Join(t.TempDir(), "real-model.ckpt")
	if err := SaveFile(modelPath, nil, map[string]float64{"epoch": 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSamplesFile(modelPath); err == nil {
		t.Fatal("model checkpoint accepted as a sample stream")
	}
}
