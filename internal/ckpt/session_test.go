package ckpt

import (
	"bytes"
	"math"
	"testing"
)

// TestSessionRoundTripBitExact: session state (float64 slices) and model
// parameters survive a save/load cycle bit-for-bit, including values that
// do not survive a float32 round trip.
func TestSessionRoundTripBitExact(t *testing.T) {
	src := tinyNet(1)
	state := map[string][]float64{
		"adam.t":         {17},
		"adam.lr":        {1e-4},
		"adam.m:enc1.aw": {math.Pi, math.Copysign(0, -1), 1e-300, math.Nextafter(1, 2)},
		"session.hist":   {0.1, 0.2, 0.30000000000000004},
	}
	meta := map[string]float64{"session.epoch": 3, "session.step": 12}

	var buf bytes.Buffer
	if err := SaveSession(&buf, src, state, meta); err != nil {
		t.Fatal(err)
	}

	dst := tinyNet(2)
	gotState, gotMeta, err := LoadSession(bytes.NewReader(buf.Bytes()), dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotState) != len(state) {
		t.Fatalf("state keys %d, want %d", len(gotState), len(state))
	}
	for k, want := range state {
		got := gotState[k]
		if len(got) != len(want) {
			t.Fatalf("state %q: %d values, want %d", k, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("state %q[%d]: bits %#x, want %#x", k, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
	if gotMeta["session.epoch"] != 3 || gotMeta["session.step"] != 12 {
		t.Fatalf("meta %v", gotMeta)
	}
	// Parameters and aux state restored bitwise.
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		a, b := sp[i].Value.Data(), dp[i].Value.Data()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("param %s diverges", sp[i].Name)
			}
		}
	}
	srcAux, dstAux := src.AuxState(), dst.AuxState()
	for k, a := range srcAux {
		for i := range a {
			if a[i] != dstAux[k][i] {
				t.Fatalf("aux %s diverges", k)
			}
		}
	}
}

// TestLoadModelSkipsSessionState: a session checkpoint doubles as a model
// checkpoint — model-only loaders ignore the session namespace.
func TestLoadModelSkipsSessionState(t *testing.T) {
	src := tinyNet(1)
	var buf bytes.Buffer
	state := map[string][]float64{"adam.t": {3}, "adam.lr": {0.01}}
	if err := SaveSession(&buf, src, state, map[string]float64{"epoch": 1}); err != nil {
		t.Fatal(err)
	}
	dst := tinyNet(2)
	meta, err := LoadModel(bytes.NewReader(buf.Bytes()), dst)
	if err != nil {
		t.Fatal(err)
	}
	if meta["epoch"] != 1 {
		t.Fatalf("meta %v", meta)
	}
}

// TestLoadSessionOnModelCheckpoint: a plain model checkpoint loads as a
// session with empty state (the caller decides whether that is an error).
func TestLoadSessionOnModelCheckpoint(t *testing.T) {
	src := tinyNet(1)
	var buf bytes.Buffer
	if err := SaveModel(&buf, src, nil); err != nil {
		t.Fatal(err)
	}
	dst := tinyNet(2)
	state, _, err := LoadSession(bytes.NewReader(buf.Bytes()), dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 0 {
		t.Fatalf("state %v, want empty", state)
	}
}
