// Package ckpt persists and restores model state: parameter tensors plus
// scalar metadata (epoch, best Dice, learning rate). Ray.Tune-style trial
// schedulers and long campaigns rely on checkpoints to pause, resume and
// recover experiments; the on-disk payload reuses the repository's TFRecord
// feature codec so checkpoints share the dataset tooling.
package ckpt

import (
	"fmt"
	"io"
	"os"

	"repro/internal/nn"
	"repro/internal/record"
)

// Save serializes the parameters and metadata to w. Parameter order and
// shapes are recorded so Load can verify compatibility.
func Save(w io.Writer, params []*nn.Param, meta map[string]float64) error {
	f := record.NewFeatures()
	names := make([]byte, 0, 256)
	for i, p := range params {
		if p.Name == "" {
			return fmt.Errorf("ckpt: parameter %d has no name", i)
		}
		names = append(names, []byte(p.Name)...)
		names = append(names, 0)
		shape := p.Value.Shape()
		shape64 := make([]int64, len(shape))
		for j, d := range shape {
			shape64[j] = int64(d)
		}
		f.AddInts("shape:"+p.Name, shape64)
		f.AddFloats("param:"+p.Name, p.Value.Data())
	}
	f.AddBytes("names", names)
	metaKeys := make([]string, 0, len(meta))
	metaVals := make([]float32, 0, len(meta))
	for k, v := range meta {
		metaKeys = append(metaKeys, k)
		metaVals = append(metaVals, float32(v))
	}
	// Deterministic metadata order.
	for i := 0; i < len(metaKeys); i++ {
		for j := i + 1; j < len(metaKeys); j++ {
			if metaKeys[j] < metaKeys[i] {
				metaKeys[i], metaKeys[j] = metaKeys[j], metaKeys[i]
				metaVals[i], metaVals[j] = metaVals[j], metaVals[i]
			}
		}
	}
	metaNames := make([]byte, 0, 64)
	for _, k := range metaKeys {
		metaNames = append(metaNames, []byte(k)...)
		metaNames = append(metaNames, 0)
	}
	f.AddBytes("meta-names", metaNames)
	f.AddFloats("meta-values", metaVals)

	return record.NewWriter(w).Write(f.Marshal())
}

// Load restores parameter values from r into params (matched by name, with
// shape verification) and returns the stored metadata.
func Load(r io.Reader, params []*nn.Param) (map[string]float64, error) {
	payload, err := record.NewReader(r).Next()
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	f, err := record.Unmarshal(payload)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	for _, p := range params {
		vals, ok := f.Floats["param:"+p.Name]
		if !ok {
			return nil, fmt.Errorf("ckpt: missing parameter %q", p.Name)
		}
		shape64, ok := f.Ints["shape:"+p.Name]
		if !ok {
			return nil, fmt.Errorf("ckpt: missing shape of %q", p.Name)
		}
		shape := p.Value.Shape()
		if len(shape64) != len(shape) {
			return nil, fmt.Errorf("ckpt: %q rank %d, checkpoint has %d", p.Name, len(shape), len(shape64))
		}
		for i := range shape {
			if int(shape64[i]) != shape[i] {
				return nil, fmt.Errorf("ckpt: %q shape %v, checkpoint has %v", p.Name, shape, shape64)
			}
		}
		if len(vals) != p.Value.Size() {
			return nil, fmt.Errorf("ckpt: %q has %d values, want %d", p.Name, len(vals), p.Value.Size())
		}
		copy(p.Value.Data(), vals)
	}

	meta := map[string]float64{}
	names := splitNames(f.Bytes["meta-names"])
	vals := f.Floats["meta-values"]
	if len(names) != len(vals) {
		return nil, fmt.Errorf("ckpt: metadata mismatch: %d names, %d values", len(names), len(vals))
	}
	for i, k := range names {
		meta[k] = float64(vals[i])
	}
	return meta, nil
}

func splitNames(b []byte) []string {
	var out []string
	start := 0
	for i, c := range b {
		if c == 0 {
			out = append(out, string(b[start:i]))
			start = i + 1
		}
	}
	return out
}

// SaveFile writes a checkpoint to path atomically (via a temp file rename).
func SaveFile(path string, params []*nn.Param, meta map[string]float64) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := Save(f, params, meta); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a checkpoint from path.
func LoadFile(path string, params []*nn.Param) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	return Load(f, params)
}
