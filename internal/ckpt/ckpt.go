// Package ckpt persists and restores model and training-session state:
// parameter tensors, auxiliary state (batch-norm running statistics) and —
// for sessions — opaque float64 state slices (optimizer moments, counters,
// metric history) stored bit-exactly as uint64 bit patterns, plus scalar
// metadata. Ray.Tune-style trial schedulers and long campaigns rely on
// checkpoints to pause, resume and recover experiments; the on-disk payload
// reuses the repository's TFRecord feature codec so checkpoints share the
// dataset tooling. A session checkpoint is a superset of a model
// checkpoint: LoadModel reads one by skipping the session namespace.
package ckpt

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/nn"
	"repro/internal/record"
)

// Save serializes the parameters and metadata to w. Parameter order and
// shapes are recorded so Load can verify compatibility. Models with
// auxiliary state (batch-norm running statistics) should use SaveModel,
// which captures it.
func Save(w io.Writer, params []*nn.Param, meta map[string]float64) error {
	return saveModel(w, params, nil, meta)
}

func saveModel(w io.Writer, params []*nn.Param, aux map[string][]float64, meta map[string]float64) error {
	return savePayload(w, params, aux, nil, meta)
}

func savePayload(w io.Writer, params []*nn.Param, aux, opt map[string][]float64, meta map[string]float64) error {
	f := record.NewFeatures()
	names := make([]byte, 0, 256)
	for i, p := range params {
		if p.Name == "" {
			return fmt.Errorf("ckpt: parameter %d has no name", i)
		}
		names = append(names, []byte(p.Name)...)
		names = append(names, 0)
		shape := p.Value.Shape()
		shape64 := make([]int64, len(shape))
		for j, d := range shape {
			shape64[j] = int64(d)
		}
		f.AddInts("shape:"+p.Name, shape64)
		f.AddFloats("param:"+p.Name, p.Value.Data())
	}
	f.AddBytes("names", names)
	// Auxiliary float64 state, stored bit-exactly as uint64 bit patterns in
	// the codec's int64 feature; keys sorted for a deterministic payload.
	addBits := func(prefix string, m map[string][]float64) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			vals := m[k]
			bits := make([]int64, len(vals))
			for i, v := range vals {
				bits[i] = int64(math.Float64bits(v))
			}
			f.AddInts(prefix+k, bits)
		}
	}
	addBits("aux:", aux)
	// Optimizer (and session) state shares the bit-pattern encoding under
	// its own namespace, so model-only loaders skip it transparently.
	addBits("opt:", opt)
	metaKeys := make([]string, 0, len(meta))
	metaVals := make([]float32, 0, len(meta))
	for k, v := range meta {
		metaKeys = append(metaKeys, k)
		metaVals = append(metaVals, float32(v))
	}
	// Deterministic metadata order.
	for i := 0; i < len(metaKeys); i++ {
		for j := i + 1; j < len(metaKeys); j++ {
			if metaKeys[j] < metaKeys[i] {
				metaKeys[i], metaKeys[j] = metaKeys[j], metaKeys[i]
				metaVals[i], metaVals[j] = metaVals[j], metaVals[i]
			}
		}
	}
	metaNames := make([]byte, 0, 64)
	for _, k := range metaKeys {
		metaNames = append(metaNames, []byte(k)...)
		metaNames = append(metaNames, 0)
	}
	f.AddBytes("meta-names", metaNames)
	f.AddFloats("meta-values", metaVals)

	return record.NewWriter(w).Write(f.Marshal())
}

// Load restores parameter values from r into params (matched by name, with
// shape verification) and returns the stored metadata. Models with
// auxiliary state should use LoadModel, which restores it.
func Load(r io.Reader, params []*nn.Param) (map[string]float64, error) {
	return loadModel(r, params, nil)
}

func loadModel(r io.Reader, params []*nn.Param, aux map[string][]float64) (map[string]float64, error) {
	meta, _, err := loadPayload(r, params, aux, false)
	return meta, err
}

func loadPayload(r io.Reader, params []*nn.Param, aux map[string][]float64, wantOpt bool) (map[string]float64, map[string][]float64, error) {
	payload, err := record.NewReader(r).Next()
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: %w", err)
	}
	f, err := record.Unmarshal(payload)
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: %w", err)
	}
	for _, p := range params {
		vals, ok := f.Floats["param:"+p.Name]
		if !ok {
			return nil, nil, fmt.Errorf("ckpt: checkpoint has no parameter %q (model expects shape %v)", p.Name, p.Value.Shape())
		}
		shape64, ok := f.Ints["shape:"+p.Name]
		if !ok {
			return nil, nil, fmt.Errorf("ckpt: checkpoint is missing the shape record of parameter %q", p.Name)
		}
		shape := p.Value.Shape()
		if len(shape64) != len(shape) {
			return nil, nil, fmt.Errorf("ckpt: parameter %q: model rank %d (shape %v), checkpoint rank %d (shape %v)",
				p.Name, len(shape), shape, len(shape64), shape64)
		}
		for i := range shape {
			if int(shape64[i]) != shape[i] {
				return nil, nil, fmt.Errorf("ckpt: parameter %q: model shape %v, checkpoint shape %v (dimension %d: %d vs %d)",
					p.Name, shape, shape64, i, shape[i], shape64[i])
			}
		}
		if len(vals) != p.Value.Size() {
			return nil, nil, fmt.Errorf("ckpt: parameter %q: checkpoint holds %d values, model needs %d", p.Name, len(vals), p.Value.Size())
		}
		copy(p.Value.Data(), vals)
	}

	if len(aux) > 0 {
		present := 0
		for name := range aux {
			if _, ok := f.Ints["aux:"+name]; ok {
				present++
			}
		}
		// Zero aux entries means a params-only checkpoint (plain Save):
		// leave the model's auxiliary state untouched. A partial set is a
		// mismatched checkpoint and rejected.
		if present > 0 {
			for name, dst := range aux {
				bits, ok := f.Ints["aux:"+name]
				if !ok {
					return nil, nil, fmt.Errorf("ckpt: checkpoint has no auxiliary state %q", name)
				}
				if len(bits) != len(dst) {
					return nil, nil, fmt.Errorf("ckpt: auxiliary state %q: checkpoint holds %d values, model needs %d",
						name, len(bits), len(dst))
				}
				for i, b := range bits {
					dst[i] = math.Float64frombits(uint64(b))
				}
			}
		}
	}

	var opt map[string][]float64
	if wantOpt {
		opt = map[string][]float64{}
		for key, bits := range f.Ints {
			name, ok := strings.CutPrefix(key, "opt:")
			if !ok {
				continue
			}
			vals := make([]float64, len(bits))
			for i, b := range bits {
				vals[i] = math.Float64frombits(uint64(b))
			}
			opt[name] = vals
		}
	}

	meta := map[string]float64{}
	names := splitNames(f.Bytes["meta-names"])
	vals := f.Floats["meta-values"]
	if len(names) != len(vals) {
		return nil, nil, fmt.Errorf("ckpt: metadata mismatch: %d names, %d values", len(names), len(vals))
	}
	for i, k := range names {
		meta[k] = float64(vals[i])
	}
	return meta, opt, nil
}

func splitNames(b []byte) []string {
	var out []string
	start := 0
	for i, c := range b {
		if c == 0 {
			out = append(out, string(b[start:i]))
			start = i + 1
		}
	}
	return out
}

// Model is anything checkpointable through its named parameters. Models
// that also implement nn.AuxStater (the U-Net does, for its batch-norm
// running statistics) get that state saved and restored too, so a restored
// model's evaluation-mode forward is bit-for-bit the original's.
type Model interface {
	Params() []*nn.Param
}

// SaveModel serializes a model — parameters, auxiliary state and metadata —
// to w. Auxiliary float64 state is stored bit-exactly.
func SaveModel(w io.Writer, m Model, meta map[string]float64) error {
	return saveModel(w, m.Params(), auxOf(m), meta)
}

// LoadModel restores a model's parameters and auxiliary state from r and
// returns the stored metadata. Checkpoints written without auxiliary state
// (plain Save) load into stateful models with their auxiliary state left
// untouched; a checkpoint that has some but not all of the model's
// auxiliary entries is rejected.
func LoadModel(r io.Reader, m Model) (map[string]float64, error) {
	return loadModel(r, m.Params(), auxOf(m))
}

func auxOf(m Model) map[string][]float64 {
	if a, ok := m.(nn.AuxStater); ok {
		return a.AuxState()
	}
	return nil
}

// SaveSession serializes a full training-session checkpoint: the model
// (parameters + auxiliary state) plus opaque session state — optimizer
// moments, step counters, metric history — as float64 slices stored
// bit-exactly, and float32-precision metadata. LoadModel reads a session
// checkpoint too (the session namespace is simply skipped), so a finished
// session's checkpoint doubles as a deployable model artifact.
func SaveSession(w io.Writer, m Model, state map[string][]float64, meta map[string]float64) error {
	return savePayload(w, m.Params(), auxOf(m), state, meta)
}

// LoadSession restores a model from a session checkpoint and returns the
// session state and metadata written by SaveSession. Every float64 in the
// state round-trips bit-exactly.
func LoadSession(r io.Reader, m Model) (state map[string][]float64, meta map[string]float64, err error) {
	meta, state, err = loadPayload(r, m.Params(), auxOf(m), true)
	return state, meta, err
}

// SaveSessionFile writes a session checkpoint to path atomically.
func SaveSessionFile(path string, m Model, state map[string][]float64, meta map[string]float64) error {
	return writeFileAtomic(path, func(f io.Writer) error { return SaveSession(f, m, state, meta) })
}

// LoadSessionFile restores a session checkpoint from path.
func LoadSessionFile(path string, m Model) (map[string][]float64, map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	return LoadSession(f, m)
}

// SaveModelFile writes a model checkpoint to path atomically.
func SaveModelFile(path string, m Model, meta map[string]float64) error {
	return writeFileAtomic(path, func(f io.Writer) error { return SaveModel(f, m, meta) })
}

// LoadModelFile restores a model checkpoint from path.
func LoadModelFile(path string, m Model) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	return LoadModel(f, m)
}

// SaveFile writes a checkpoint to path atomically (via a temp file rename).
func SaveFile(path string, params []*nn.Param, meta map[string]float64) error {
	return writeFileAtomic(path, func(f io.Writer) error { return Save(f, params, meta) })
}

func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a checkpoint from path.
func LoadFile(path string, params []*nn.Param) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	return Load(f, params)
}
