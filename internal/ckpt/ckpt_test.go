package ckpt

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/unet"
)

func tinyNet(seed int64) *unet.UNet {
	return unet.MustNew(unet.Config{
		InChannels: 2, OutChannels: 1, BaseFilters: 2, Steps: 2,
		Kernel: 3, UpKernel: 2, Seed: seed,
	})
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := tinyNet(1)
	rng := rand.New(rand.NewSource(2))
	for _, p := range src.Params() {
		for i := range p.Value.Data() {
			p.Value.Data()[i] = float32(rng.NormFloat64())
		}
	}
	var buf bytes.Buffer
	meta := map[string]float64{"epoch": 42, "dice": 0.89, "lr": 1e-4}
	if err := Save(&buf, src.Params(), meta); err != nil {
		t.Fatal(err)
	}

	dst := tinyNet(99) // different init
	gotMeta, err := Load(&buf, dst.Params())
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		if tensor.MaxAbsDiff(p.Value, dst.Params()[i].Value) != 0 {
			t.Fatalf("param %s not restored", p.Name)
		}
	}
	if gotMeta["epoch"] != 42 {
		t.Fatalf("meta %v", gotMeta)
	}
	if lr := gotMeta["lr"]; lr < 0.99e-4 || lr > 1.01e-4 { // float32 round trip
		t.Fatalf("lr meta %v", lr)
	}
	if d := gotMeta["dice"]; d < 0.889 || d > 0.891 { // float32 round trip
		t.Fatalf("dice meta %v", d)
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	src := tinyNet(1)
	var buf bytes.Buffer
	if err := Save(&buf, src.Params(), nil); err != nil {
		t.Fatal(err)
	}
	other := unet.MustNew(unet.Config{
		InChannels: 2, OutChannels: 1, BaseFilters: 4, Steps: 2, // wider net
		Kernel: 3, UpKernel: 2, Seed: 1,
	})
	_, err := Load(&buf, other.Params())
	if err == nil {
		t.Fatal("shape mismatch must error")
	}
	// The error must name the offending parameter and both shapes, so a
	// mis-configured serving deployment is diagnosable from the message.
	msg := err.Error()
	if !strings.Contains(msg, `"enc1.a.w"`) {
		t.Fatalf("shape-mismatch error does not name the parameter: %q", msg)
	}
	if !strings.Contains(msg, "[4 2 3 3 3]") || !strings.Contains(msg, "[2 2 3 3 3]") {
		t.Fatalf("shape-mismatch error does not give both shapes: %q", msg)
	}
}

// TestModelRoundTripBitwiseForward is the full serving contract: a trained
// U-Net saved with SaveModel and loaded into a fresh differently-seeded net
// must produce bit-for-bit identical evaluation-mode forwards — parameters
// AND batch-norm running statistics round-trip exactly.
func TestModelRoundTripBitwiseForward(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")

	src := tinyNet(5)
	rng := rand.New(rand.NewSource(6))
	x := tensor.Randn(rng, 0, 1, 1, 2, 4, 4, 4)
	// Train-mode steps move the running statistics away from their init.
	src.Forward(x)
	src.Forward(x)
	if err := SaveModelFile(path, src, map[string]float64{"epoch": 2}); err != nil {
		t.Fatal(err)
	}

	dst := tinyNet(9) // different weights AND different running stats
	meta, err := LoadModelFile(path, dst)
	if err != nil {
		t.Fatal(err)
	}
	if meta["epoch"] != 2 {
		t.Fatalf("meta %v", meta)
	}

	src.SetTraining(false)
	dst.SetTraining(false)
	want := src.Forward(x)
	got := dst.Forward(x)
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("eval forward element %d differs after round trip: %v vs %v", i, gd[i], wd[i])
		}
	}

	// And through the inference fast path, which the serving layer uses.
	inf := dst.Infer(x)
	for i := range wd {
		if inf.Data()[i] != wd[i] {
			t.Fatalf("Infer element %d differs after round trip", i)
		}
	}
	tensor.Recycle(inf)
}

// TestLoadModelToleratesParamsOnlyCheckpoint: a plain Save checkpoint loads
// into a stateful model, leaving auxiliary state untouched.
func TestLoadModelToleratesParamsOnlyCheckpoint(t *testing.T) {
	src := tinyNet(1)
	var buf bytes.Buffer
	if err := Save(&buf, src.Params(), nil); err != nil {
		t.Fatal(err)
	}
	dst := tinyNet(2)
	if _, err := LoadModel(&buf, dst); err != nil {
		t.Fatalf("params-only checkpoint must load: %v", err)
	}
}

func TestLoadRejectsMissingParam(t *testing.T) {
	p := nn.NewParam("only", tensor.Ones(2))
	var buf bytes.Buffer
	if err := Save(&buf, []*nn.Param{p}, nil); err != nil {
		t.Fatal(err)
	}
	q := nn.NewParam("other", tensor.Ones(2))
	if _, err := Load(&buf, []*nn.Param{q}); err == nil {
		t.Fatal("missing parameter must error")
	}
}

func TestSaveRejectsUnnamedParam(t *testing.T) {
	p := nn.NewParam("", tensor.Ones(2))
	var buf bytes.Buffer
	if err := Save(&buf, []*nn.Param{p}, nil); err == nil {
		t.Fatal("unnamed parameter must error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint")), nil); err == nil {
		t.Fatal("garbage must error")
	}
}

func TestFileRoundTripAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	src := tinyNet(3)
	if err := SaveFile(path, src.Params(), map[string]float64{"epoch": 7}); err != nil {
		t.Fatal(err)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file not cleaned up")
	}
	dst := tinyNet(4)
	meta, err := LoadFile(path, dst.Params())
	if err != nil {
		t.Fatal(err)
	}
	if meta["epoch"] != 7 {
		t.Fatalf("meta %v", meta)
	}
	if tensor.MaxAbsDiff(src.Params()[0].Value, dst.Params()[0].Value) != 0 {
		t.Fatal("weights not restored from file")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.ckpt"), nil); err == nil {
		t.Fatal("missing file must error")
	}
}

// TestResumeTrainingEquivalence verifies the checkpoint contract end to
// end: training 2 steps, checkpointing, then loading into a fresh model
// must reproduce identical forward outputs.
func TestResumeTrainingEquivalence(t *testing.T) {
	src := tinyNet(5)
	rng := rand.New(rand.NewSource(6))
	x := tensor.Randn(rng, 0, 1, 1, 2, 4, 4, 4)
	// A couple of pseudo-updates.
	for step := 0; step < 2; step++ {
		for _, p := range src.Params() {
			p.Value.AddScaled(0.01, tensor.Ones(p.Value.Shape()...))
		}
	}
	var buf bytes.Buffer
	if err := Save(&buf, src.Params(), nil); err != nil {
		t.Fatal(err)
	}
	dst := tinyNet(7)
	if _, err := Load(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	src.SetTraining(false)
	dst.SetTraining(false)
	a := src.Forward(x)
	bOut := dst.Forward(x)
	// Note: BatchNorm running stats are not parameters; fresh stats give
	// slightly different eval outputs, so compare in training mode instead.
	src.SetTraining(true)
	dst.SetTraining(true)
	a = src.Forward(x)
	bOut = dst.Forward(x)
	if tensor.MaxAbsDiff(a, bOut) > 1e-6 {
		t.Fatalf("restored model diverges: %v", tensor.MaxAbsDiff(a, bOut))
	}
}
