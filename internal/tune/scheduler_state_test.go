package tune

import (
	"errors"
	"os"
	"testing"
)

// TestASHAStateRoundTrip: export → import into a fresh scheduler preserves
// rung populations and judged sets exactly, including the judged-rung dedup
// (a re-imported trial re-reporting the same rung is ignored).
func TestASHAStateRoundTrip(t *testing.T) {
	a1 := NewASHA("dice", "max", 2, 2)
	trials := []*Trial{NewTrial(0, Config{}), NewTrial(1, Config{}), NewTrial(2, Config{})}
	dice := []float64{0.9, 0.8, 0.1}
	for i, tr := range trials {
		a1.OnReport(tr, Report{Step: 2, Metrics: map[string]float64{"dice": dice[i]}}, trials)
	}

	state, err := a1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	a2 := NewASHA("dice", "max", 2, 2)
	if err := a2.ImportState(state); err != nil {
		t.Fatal(err)
	}
	state2, err := a2.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if string(state) != string(state2) {
		t.Fatalf("state changed across round trip:\n%s\n%s", state, state2)
	}

	// A restored trial re-reporting its judged rung must not be re-counted
	// or re-judged: 0.1 ranked bottom once already, but the dedup returns
	// Continue instead of re-recording it.
	if d := a2.OnReport(trials[2], Report{Step: 2, Metrics: map[string]float64{"dice": 0.1}}, trials); d != Continue {
		t.Fatalf("re-reported judged rung: got %v, want Continue", d)
	}
	// A new trial at the same rung is judged against the restored population.
	weak := NewTrial(3, Config{})
	if d := a2.OnReport(weak, Report{Step: 2, Metrics: map[string]float64{"dice": 0.2}}, trials); d != StopTrial {
		t.Fatalf("new bottom-half trial against restored rung: got %v, want StopTrial", d)
	}

	if err := a2.ImportState([]byte("{not json")); err == nil {
		t.Fatal("garbage state must be rejected")
	}
}

// TestCampaignPersistsSchedulerState: a resumed ASHA campaign restores the
// scheduler from the persisted state file, which carries evidence replay
// cannot reconstruct — reports from trials that died without a terminal
// record. The new trial's verdict flips on exactly that evidence.
func TestCampaignPersistsSchedulerState(t *testing.T) {
	cl := testCluster(t, 1)
	dir := t.TempDir()
	// dice by trial: 0→0.8 (finishes), 1→0.9 (finishes), 2→0.95 (reports,
	// then dies), 3→0.85 (dies before reporting; runs fully on resume).
	// Ascending order keeps every pass-1 reporter in ASHA's top half.
	cfgs := []Config{{"dice": 0.8}, {"dice": 0.9}, {"dice": 0.95}, {"dice": 0.85}}

	r1, err := NewRunner(cl, NewASHA("dice", "max", 2, 2), "dice", "max")
	if err != nil {
		t.Fatal(err)
	}
	r1.CheckpointDir = dir
	_, err = r1.Run(cfgs, func(ctx *TrialContext) error {
		d := ctx.Trial.Config.Float("dice")
		if d == 0.85 {
			return errors.New("simulated preemption")
		}
		ctx.Report(2, map[string]float64{"dice": d})
		if d == 0.95 {
			return errors.New("simulated preemption")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(schedulerStatePath(dir)); err != nil {
		t.Fatalf("scheduler state not persisted: %v", err)
	}

	// Resume with a fresh ASHA. The persisted rung holds {0.8, 0.9, 0.95};
	// trial 3's 0.85 lands below the 0.9 cut and must stop. Replay of
	// terminal records alone would see only {0.8, 0.9} — a rung whose cut
	// is 0.85, where the trial survives — so a stop proves the state file
	// was used, 0.95 coming from a trial that died without a record.
	r2, err := NewRunner(cl, NewASHA("dice", "max", 2, 2), "dice", "max")
	if err != nil {
		t.Fatal(err)
	}
	r2.CheckpointDir = dir
	a2, err := r2.Run(cfgs, func(ctx *TrialContext) error {
		d := ctx.Trial.Config.Float("dice")
		cont := ctx.Report(2, map[string]float64{"dice": d})
		if d == 0.85 && cont {
			t.Error("trial 3 must be stopped against the restored rung population")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts := a2.StatusCounts(); counts[Stopped] != 1 {
		t.Fatalf("statuses %v, want exactly 1 stopped", counts)
	}
}

// TestSchedulerStateNameMismatchIgnored: a state file written by a
// different scheduler must not be imported.
func TestSchedulerStateNameMismatchIgnored(t *testing.T) {
	dir := t.TempDir()
	asha := NewASHA("dice", "max", 2, 2)
	asha.OnReport(NewTrial(0, Config{}), Report{Step: 2, Metrics: map[string]float64{"dice": 0.5}}, nil)
	if err := writeSchedulerState(dir, asha); err != nil {
		t.Fatal(err)
	}

	if !loadSchedulerState(dir, NewASHA("dice", "max", 2, 2)) {
		t.Fatal("matching scheduler name must load")
	}

	// A state file claiming a different scheduler: no import.
	bad := []byte(`{"scheduler":"fifo","state":{}}`)
	if err := os.WriteFile(schedulerStatePath(dir), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if loadSchedulerState(dir, NewASHA("dice", "max", 2, 2)) {
		t.Fatal("foreign scheduler state must be ignored")
	}

	// Stateless schedulers neither write nor load.
	if err := writeSchedulerState(dir, FIFO{}); err != nil {
		t.Fatal(err)
	}
	if loadSchedulerState(dir, FIFO{}) {
		t.Fatal("stateless scheduler cannot load state")
	}
}
