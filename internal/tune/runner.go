package tune

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/cluster"
)

// TrialContext is handed to the user's training function. Its Report method
// is the paper's "reporting callback function" protocol: the trainable
// reports metrics each epoch and learns whether to keep going.
type TrialContext struct {
	Trial *Trial

	runner *Runner
	stop   bool
}

// Report records metrics at a step and returns false when the scheduler
// wants the trial stopped; the trainable should then return promptly.
func (c *TrialContext) Report(step int, metrics map[string]float64) bool {
	if c.stop {
		return false
	}
	rep := Report{Step: step, Metrics: metrics}
	c.Trial.addReport(rep)
	if c.runner.scheduler.OnReport(c.Trial, rep, c.runner.trials) == StopTrial {
		c.stop = true
		return false
	}
	return true
}

// Stopped reports whether the scheduler has requested an early stop.
func (c *TrialContext) Stopped() bool { return c.stop }

// Dir returns the trial's private checkpoint directory (creating it on
// first call) when the runner has a CheckpointDir, or "" when the campaign
// is not resumable. Trainables put their session checkpoints here; a re-run
// of an interrupted campaign hands the re-executed trial the same
// directory, so it can resume from its last checkpoint.
func (c *TrialContext) Dir() (string, error) {
	if c.runner.CheckpointDir == "" {
		return "", nil
	}
	dir := TrialDir(c.runner.CheckpointDir, c.Trial.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("tune: %w", err)
	}
	return dir, nil
}

// Trainable is the user's training function, the analogue of the "training
// function to be called from Ray, having a dictionary containing the
// hyperparameters as argument".
type Trainable func(ctx *TrialContext) error

// Runner executes a set of trials over a cluster, one GPU per trial.
type Runner struct {
	Cluster   *cluster.Cluster
	Placement cluster.PlacementPolicy
	Metric    string
	Mode      string // "max" (default) or "min"

	// CheckpointDir, when non-empty, makes the campaign resumable: every
	// trial's terminal outcome is recorded under it, a re-run with the same
	// (deterministically ordered) configs restores finished trials instead
	// of re-training them, and each trainable gets a private per-trial
	// directory (TrialContext.Dir) for its own session checkpoints, so
	// in-flight trials resume from their last checkpoint.
	CheckpointDir string

	scheduler Scheduler
	trials    []*Trial
	persistMu sync.Mutex // serializes trial-record + scheduler-state writes
}

// NewRunner builds a runner; a nil scheduler means FIFO.
func NewRunner(cl *cluster.Cluster, sched Scheduler, metric, mode string) (*Runner, error) {
	if cl == nil {
		return nil, fmt.Errorf("tune: nil cluster")
	}
	if metric == "" {
		return nil, fmt.Errorf("tune: metric name required")
	}
	if mode != "max" && mode != "min" {
		return nil, fmt.Errorf("tune: mode must be \"max\" or \"min\", got %q", mode)
	}
	if sched == nil {
		sched = FIFO{}
	}
	return &Runner{Cluster: cl, Placement: cluster.Pack, Metric: metric, Mode: mode, scheduler: sched}, nil
}

// Run executes one trial per configuration, at most one per GPU
// concurrently, and blocks until all trials finish. This is the analogue of
// Tune.Run: "the batch of experiments are run through Tune.Run, passing the
// set of hyper-parameters to explore".
func (r *Runner) Run(configs []Config, trainable Trainable) (*Analysis, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("tune: no configurations to run")
	}
	if trainable == nil {
		return nil, fmt.Errorf("tune: nil trainable")
	}
	r.trials = make([]*Trial, len(configs))
	for i, cfg := range configs {
		r.trials[i] = NewTrial(i, cfg)
	}

	// Campaign resume: restore terminal trials recorded by a previous run
	// of the same campaign; everything else is (re)scheduled.
	restored := make([]bool, len(r.trials))
	if r.CheckpointDir != "" {
		if err := os.MkdirAll(r.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("tune: %w", err)
		}
		for i, trial := range r.trials {
			restored[i] = restoreTrial(r.CheckpointDir, trial)
		}
		// Restore the scheduler's own observations. Preferred path: the
		// persisted state written alongside the trial records, which holds
		// exactly what the scheduler had seen — including reports from
		// in-flight trials that never reached a terminal record. Fallback
		// (no state file, older campaign, different scheduler): replay the
		// restored terminal reports in deterministic trial order. The
		// verdicts are discarded either way: restored trials are terminal.
		if !loadSchedulerState(r.CheckpointDir, r.scheduler) {
			for i, trial := range r.trials {
				if !restored[i] {
					continue
				}
				for _, rep := range trial.Reports() {
					r.scheduler.OnReport(trial, rep, r.trials)
				}
			}
		}
	}

	alloc := r.Cluster.NewAlloc(r.Placement)
	var mu sync.Mutex
	next := 0
	var wg sync.WaitGroup

	// One worker per GPU pulls pending trials until none remain.
	workers := r.Cluster.TotalGPUs()
	if workers > len(configs) {
		workers = len(configs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for next < len(r.trials) && restored[next] {
					next++
				}
				if next >= len(r.trials) {
					mu.Unlock()
					return
				}
				trial := r.trials[next]
				next++
				gpu, ok := alloc.Acquire()
				mu.Unlock()
				if !ok {
					// Cannot happen: workers ≤ GPUs.
					trial.setErr(fmt.Errorf("tune: no GPU available"))
					continue
				}
				trial.setGPU(gpu)
				trial.setStatus(Running)
				ctx := &TrialContext{Trial: trial, runner: r}
				err := runTrial(ctx, trainable)
				switch {
				case err != nil:
					trial.setErr(err)
				case ctx.stop:
					trial.setStatus(Stopped)
				default:
					trial.setStatus(Terminated)
				}
				if r.CheckpointDir != "" {
					r.persistMu.Lock()
					werr := writeTrialRecord(r.CheckpointDir, trial)
					if werr == nil {
						// Keep the scheduler state at least as fresh as the
						// trial records it judged.
						werr = writeSchedulerState(r.CheckpointDir, r.scheduler)
					}
					r.persistMu.Unlock()
					if werr != nil && trial.Err() == nil {
						trial.setErr(werr)
					}
				}
				mu.Lock()
				alloc.Release(gpu)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return &Analysis{Trials: r.trials, Metric: r.Metric, Mode: r.Mode}, nil
}

// runTrial isolates trainable panics into trial errors so one bad
// configuration cannot take down the whole search.
func runTrial(ctx *TrialContext, trainable Trainable) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("tune: trial %d panicked: %v", ctx.Trial.ID, rec)
		}
	}()
	return trainable(ctx)
}
