package tune

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Decision is a scheduler's verdict on a reporting trial.
type Decision int

// Scheduler decisions.
const (
	Continue Decision = iota
	StopTrial
)

// Scheduler decides, on every report, whether a trial keeps running. This is
// the extension point Ray.Tune calls a trial scheduler; FIFO reproduces the
// paper's behaviour, median-stopping and ASHA implement the "smarter
// tuning" extensions.
type Scheduler interface {
	Name() string
	OnReport(trial *Trial, rep Report, peers []*Trial) Decision
}

// StatefulScheduler is a Scheduler whose verdicts depend on accumulated
// observations. Campaign checkpointing persists the exported state next to
// the trial records, so a resumed campaign restores the scheduler directly
// instead of recomputing it by replaying every restored report.
type StatefulScheduler interface {
	Scheduler
	// ExportState serializes the scheduler's accumulated observations.
	ExportState() ([]byte, error)
	// ImportState replaces the scheduler's observations with a previously
	// exported state.
	ImportState(data []byte) error
}

// FIFO runs every trial to completion (Ray.Tune's default; the paper's
// benchmark behaviour).
type FIFO struct{}

// Name implements Scheduler.
func (FIFO) Name() string { return "fifo" }

// OnReport implements Scheduler.
func (FIFO) OnReport(*Trial, Report, []*Trial) Decision { return Continue }

// MedianStopping stops a trial whose best metric is worse than the median
// of its peers' bests, after a grace period.
type MedianStopping struct {
	Metric      string
	Mode        string // "max" or "min"
	GracePeriod int    // reports before the rule may fire
	MinPeers    int    // peers with data required before the rule may fire
}

// Name implements Scheduler.
func (m MedianStopping) Name() string { return "median-stopping" }

// OnReport implements Scheduler.
func (m MedianStopping) OnReport(trial *Trial, rep Report, peers []*Trial) Decision {
	if rep.Step < m.GracePeriod {
		return Continue
	}
	var peerBests []float64
	for _, p := range peers {
		if p == trial {
			continue
		}
		if v, ok := p.BestMetric(m.Metric, m.Mode); ok {
			peerBests = append(peerBests, v)
		}
	}
	if len(peerBests) < m.MinPeers {
		return Continue
	}
	sort.Float64s(peerBests)
	median := peerBests[len(peerBests)/2]
	mine, ok := trial.BestMetric(m.Metric, m.Mode)
	if !ok {
		return Continue
	}
	worse := mine < median
	if m.Mode == "min" {
		worse = mine > median
	}
	if worse {
		return StopTrial
	}
	return Continue
}

// ASHA is the asynchronous successive-halving scheduler: rungs sit at
// MinT·Reduction^k steps; at each rung a trial survives only if it ranks in
// the top 1/Reduction of the metric values recorded at that rung so far.
type ASHA struct {
	Metric    string
	Mode      string
	MinT      int // first rung
	Reduction int // η

	mu     sync.Mutex
	rungs  map[int][]float64    // rung step → recorded metric values
	judged map[int]map[int]bool // trial ID → rungs already judged
}

// NewASHA returns an ASHA scheduler with the given first rung and reduction
// factor η (commonly 3 or 4).
func NewASHA(metric, mode string, minT, reduction int) *ASHA {
	if minT < 1 {
		minT = 1
	}
	if reduction < 2 {
		reduction = 2
	}
	return &ASHA{
		Metric:    metric,
		Mode:      mode,
		MinT:      minT,
		Reduction: reduction,
		rungs:     map[int][]float64{},
		judged:    map[int]map[int]bool{},
	}
}

// Name implements Scheduler.
func (a *ASHA) Name() string { return "asha" }

// rungFor returns the highest rung boundary ≤ step, or 0 if below MinT.
func (a *ASHA) rungFor(step int) int {
	r := a.MinT
	best := 0
	for r <= step {
		best = r
		r *= a.Reduction
	}
	return best
}

// OnReport implements Scheduler.
func (a *ASHA) OnReport(trial *Trial, rep Report, peers []*Trial) Decision {
	v, ok := rep.Metrics[a.Metric]
	if !ok {
		return Continue
	}
	rung := a.rungFor(rep.Step)
	if rung == 0 {
		return Continue
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Each trial is recorded and judged at most once per rung (keyed by
	// trial ID, so a restored or re-run trial re-reporting the same rung
	// cannot double-count); later reports inside the same band are ignored.
	if a.judged[trial.ID] == nil {
		a.judged[trial.ID] = map[int]bool{}
	}
	if a.judged[trial.ID][rung] {
		return Continue
	}
	a.judged[trial.ID][rung] = true
	vals := append(a.rungs[rung], v)
	a.rungs[rung] = vals
	if len(vals) < a.Reduction {
		return Continue // not enough evidence at this rung yet
	}
	sorted := append([]float64(nil), vals...)
	if a.Mode == "min" {
		sort.Float64s(sorted)
	} else {
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	}
	cut := sorted[(len(sorted)-1)/a.Reduction]
	survives := v >= cut
	if a.Mode == "min" {
		survives = v <= cut
	}
	if survives {
		return Continue
	}
	return StopTrial
}

// ashaState is the JSON shape of ASHA's accumulated observations: the rung
// populations (metric values in arrival order — order is irrelevant to the
// quantile cut but kept stable for reproducible files) and the rungs each
// trial has been judged at.
type ashaState struct {
	Rungs  map[int][]float64 `json:"rungs"`
	Judged map[int][]int     `json:"judged"`
}

// ExportState implements StatefulScheduler.
func (a *ASHA) ExportState() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := ashaState{Rungs: map[int][]float64{}, Judged: map[int][]int{}}
	for rung, vals := range a.rungs {
		st.Rungs[rung] = append([]float64(nil), vals...)
	}
	for id, rungs := range a.judged {
		var rs []int
		for r := range rungs {
			rs = append(rs, r)
		}
		sort.Ints(rs)
		st.Judged[id] = rs
	}
	return json.Marshal(st)
}

// ImportState implements StatefulScheduler.
func (a *ASHA) ImportState(data []byte) error {
	var st ashaState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("tune: asha state: %w", err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rungs = map[int][]float64{}
	for rung, vals := range st.Rungs {
		a.rungs[rung] = append([]float64(nil), vals...)
	}
	a.judged = map[int]map[int]bool{}
	for id, rungs := range st.Judged {
		m := map[int]bool{}
		for _, r := range rungs {
			m[r] = true
		}
		a.judged[id] = m
	}
	return nil
}
