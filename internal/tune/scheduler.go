package tune

import (
	"sort"
	"sync"
)

// Decision is a scheduler's verdict on a reporting trial.
type Decision int

// Scheduler decisions.
const (
	Continue Decision = iota
	StopTrial
)

// Scheduler decides, on every report, whether a trial keeps running. This is
// the extension point Ray.Tune calls a trial scheduler; FIFO reproduces the
// paper's behaviour, median-stopping and ASHA implement the "smarter
// tuning" extensions.
type Scheduler interface {
	Name() string
	OnReport(trial *Trial, rep Report, peers []*Trial) Decision
}

// FIFO runs every trial to completion (Ray.Tune's default; the paper's
// benchmark behaviour).
type FIFO struct{}

// Name implements Scheduler.
func (FIFO) Name() string { return "fifo" }

// OnReport implements Scheduler.
func (FIFO) OnReport(*Trial, Report, []*Trial) Decision { return Continue }

// MedianStopping stops a trial whose best metric is worse than the median
// of its peers' bests, after a grace period.
type MedianStopping struct {
	Metric      string
	Mode        string // "max" or "min"
	GracePeriod int    // reports before the rule may fire
	MinPeers    int    // peers with data required before the rule may fire
}

// Name implements Scheduler.
func (m MedianStopping) Name() string { return "median-stopping" }

// OnReport implements Scheduler.
func (m MedianStopping) OnReport(trial *Trial, rep Report, peers []*Trial) Decision {
	if rep.Step < m.GracePeriod {
		return Continue
	}
	var peerBests []float64
	for _, p := range peers {
		if p == trial {
			continue
		}
		if v, ok := p.BestMetric(m.Metric, m.Mode); ok {
			peerBests = append(peerBests, v)
		}
	}
	if len(peerBests) < m.MinPeers {
		return Continue
	}
	sort.Float64s(peerBests)
	median := peerBests[len(peerBests)/2]
	mine, ok := trial.BestMetric(m.Metric, m.Mode)
	if !ok {
		return Continue
	}
	worse := mine < median
	if m.Mode == "min" {
		worse = mine > median
	}
	if worse {
		return StopTrial
	}
	return Continue
}

// ASHA is the asynchronous successive-halving scheduler: rungs sit at
// MinT·Reduction^k steps; at each rung a trial survives only if it ranks in
// the top 1/Reduction of the metric values recorded at that rung so far.
type ASHA struct {
	Metric    string
	Mode      string
	MinT      int // first rung
	Reduction int // η

	mu     sync.Mutex
	rungs  map[int][]float64       // rung step → recorded metric values
	judged map[*Trial]map[int]bool // rungs already judged per trial
}

// NewASHA returns an ASHA scheduler with the given first rung and reduction
// factor η (commonly 3 or 4).
func NewASHA(metric, mode string, minT, reduction int) *ASHA {
	if minT < 1 {
		minT = 1
	}
	if reduction < 2 {
		reduction = 2
	}
	return &ASHA{
		Metric:    metric,
		Mode:      mode,
		MinT:      minT,
		Reduction: reduction,
		rungs:     map[int][]float64{},
		judged:    map[*Trial]map[int]bool{},
	}
}

// Name implements Scheduler.
func (a *ASHA) Name() string { return "asha" }

// rungFor returns the highest rung boundary ≤ step, or 0 if below MinT.
func (a *ASHA) rungFor(step int) int {
	r := a.MinT
	best := 0
	for r <= step {
		best = r
		r *= a.Reduction
	}
	return best
}

// OnReport implements Scheduler.
func (a *ASHA) OnReport(trial *Trial, rep Report, peers []*Trial) Decision {
	v, ok := rep.Metrics[a.Metric]
	if !ok {
		return Continue
	}
	rung := a.rungFor(rep.Step)
	if rung == 0 {
		return Continue
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Each trial is recorded and judged at most once per rung; later
	// reports inside the same rung band are ignored.
	if a.judged[trial] == nil {
		a.judged[trial] = map[int]bool{}
	}
	if a.judged[trial][rung] {
		return Continue
	}
	a.judged[trial][rung] = true
	vals := append(a.rungs[rung], v)
	a.rungs[rung] = vals
	if len(vals) < a.Reduction {
		return Continue // not enough evidence at this rung yet
	}
	sorted := append([]float64(nil), vals...)
	if a.Mode == "min" {
		sort.Float64s(sorted)
	} else {
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	}
	cut := sorted[(len(sorted)-1)/a.Reduction]
	survives := v >= cut
	if a.Mode == "min" {
		survives = v <= cut
	}
	if survives {
		return Continue
	}
	return StopTrial
}
