package tune

import (
	"fmt"
	"sort"
	"sync"
)

// Status is a trial lifecycle state.
type Status int

// Trial lifecycle states, mirroring Ray.Tune's.
const (
	Pending Status = iota
	Running
	Terminated // finished normally
	Stopped    // stopped early by a scheduler
	Errored
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Running:
		return "RUNNING"
	case Terminated:
		return "TERMINATED"
	case Stopped:
		return "STOPPED"
	case Errored:
		return "ERRORED"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Report is one metrics callback from a running trial, the paper's
// "reporting callback function... to provide Ray with the finalization
// results".
type Report struct {
	Step    int // training iteration (epoch) of the report
	Metrics map[string]float64
}

// Trial is one experiment of the search.
type Trial struct {
	ID     int
	Config Config

	mu      sync.Mutex
	status  Status
	gpu     int
	reports []Report
	err     error
}

// NewTrial creates a pending trial.
func NewTrial(id int, cfg Config) *Trial {
	return &Trial{ID: id, Config: cfg, status: Pending, gpu: -1}
}

// Status returns the current lifecycle state.
func (t *Trial) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// GPU returns the GPU the trial is (or was) placed on, -1 if never placed.
func (t *Trial) GPU() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gpu
}

// Err returns the trial's failure, if any.
func (t *Trial) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Reports returns a copy of the reports received so far.
func (t *Trial) Reports() []Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Report, len(t.reports))
	copy(out, t.reports)
	return out
}

// LastMetric returns the most recent value of a metric and whether any
// report carried it.
func (t *Trial) LastMetric(name string) (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.reports) - 1; i >= 0; i-- {
		if v, ok := t.reports[i].Metrics[name]; ok {
			return v, true
		}
	}
	return 0, false
}

// BestMetric returns the best value of a metric under the given mode
// ("max" or "min").
func (t *Trial) BestMetric(name, mode string) (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	found := false
	var best float64
	for _, r := range t.reports {
		v, ok := r.Metrics[name]
		if !ok {
			continue
		}
		if !found || (mode == "min" && v < best) || (mode != "min" && v > best) {
			best = v
			found = true
		}
	}
	return best, found
}

func (t *Trial) setStatus(s Status) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.status = s
}

func (t *Trial) setGPU(g int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gpu = g
}

func (t *Trial) setErr(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.err = err
	t.status = Errored
}

// restore re-establishes a terminal state recorded by a previous campaign
// run (status and full report history) without executing the trainable.
func (t *Trial) restore(s Status, reports []Report) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.status = s
	t.reports = append(t.reports[:0], reports...)
}

func (t *Trial) addReport(r Report) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reports = append(t.reports, r)
}

// Analysis summarizes a finished run.
type Analysis struct {
	Trials []*Trial
	Metric string
	Mode   string
}

// Best returns the trial with the best final metric, or nil when no trial
// reported it.
func (a *Analysis) Best() *Trial {
	var best *Trial
	var bestV float64
	for _, t := range a.Trials {
		v, ok := t.BestMetric(a.Metric, a.Mode)
		if !ok {
			continue
		}
		if best == nil || (a.Mode == "min" && v < bestV) || (a.Mode != "min" && v > bestV) {
			best, bestV = t, v
		}
	}
	return best
}

// Ranked returns the trials ordered best-first by their best metric; trials
// without the metric sort last.
func (a *Analysis) Ranked() []*Trial {
	out := append([]*Trial(nil), a.Trials...)
	sort.SliceStable(out, func(i, j int) bool {
		vi, oki := out[i].BestMetric(a.Metric, a.Mode)
		vj, okj := out[j].BestMetric(a.Metric, a.Mode)
		if oki != okj {
			return oki
		}
		if !oki {
			return false
		}
		if a.Mode == "min" {
			return vi < vj
		}
		return vi > vj
	})
	return out
}

// StatusCounts tallies trials per lifecycle state.
func (a *Analysis) StatusCounts() map[Status]int {
	out := map[Status]int{}
	for _, t := range a.Trials {
		out[t.Status()]++
	}
	return out
}
