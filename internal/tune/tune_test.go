package tune

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

func TestGridConfigsCrossProduct(t *testing.T) {
	s, err := NewSpace(Grid("a", 1, 2, 3), Grid("b", "x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := s.GridConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 6 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		key := fmt.Sprintf("%v-%v", c["a"], c["b"])
		if seen[key] {
			t.Fatalf("duplicate config %s", key)
		}
		seen[key] = true
	}
}

func TestPaperSpaceIs32Experiments(t *testing.T) {
	s := PaperSpace()
	if s.Size() != 32 {
		t.Fatalf("paper space size %d, want 32 (4 lr × 2 loss × 2 opt × 2 aug)", s.Size())
	}
	cfgs, err := s.GridConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 32 {
		t.Fatalf("grid %d", len(cfgs))
	}
	// Every config must carry all four axes with valid values.
	for _, c := range cfgs {
		if c.Float("lr") <= 0 {
			t.Fatal("bad lr")
		}
		if l := c.Str("loss"); l != "dice" && l != "quadratic-dice" {
			t.Fatalf("bad loss %q", l)
		}
	}
}

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace(); err == nil {
		t.Fatal("empty space must error")
	}
	if _, err := NewSpace(Grid("a", 1), Grid("a", 2)); err == nil {
		t.Fatal("duplicate axis must error")
	}
}

func TestContinuousAxes(t *testing.T) {
	s, err := NewSpace(Uniform("u", 0, 1), LogUniform("lr", 1e-5, 1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 0 {
		t.Fatal("continuous space has no grid size")
	}
	if _, err := s.GridConfigs(); err == nil {
		t.Fatal("grid over continuous axis must error")
	}
	cfgs := s.SampleConfigs(50, 1)
	for _, c := range cfgs {
		u := c.Float("u")
		lr := c.Float("lr")
		if u < 0 || u >= 1 {
			t.Fatalf("uniform out of range: %v", u)
		}
		if lr < 1e-5 || lr >= 1e-2 {
			t.Fatalf("loguniform out of range: %v", lr)
		}
	}
	// Log-uniform should put roughly half the mass below the geometric
	// midpoint (~3e-4), unlike plain uniform.
	below := 0
	for _, c := range cfgs {
		if c.Float("lr") < 3.16e-4 {
			below++
		}
	}
	if below < 15 || below > 35 {
		t.Fatalf("loguniform mass below midpoint: %d/50", below)
	}
}

func TestSampleDeterministicBySeed(t *testing.T) {
	s, _ := NewSpace(Uniform("u", 0, 1))
	a := s.SampleConfigs(5, 42)
	b := s.SampleConfigs(5, 42)
	for i := range a {
		if a[i].Float("u") != b[i].Float("u") {
			t.Fatal("same seed must sample identically")
		}
	}
}

func TestConfigAccessors(t *testing.T) {
	c := Config{"lr": 0.1, "n": 3, "name": "x"}
	if c.Float("lr") != 0.1 || c.Float("n") != 3 {
		t.Fatal("Float accessor broken")
	}
	if c.Str("name") != "x" {
		t.Fatal("Str accessor broken")
	}
	if !c.Has("lr") || c.Has("missing") {
		t.Fatal("Has broken")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Float on string must panic")
			}
		}()
		c.Float("name")
	}()
}

func TestSortConfigsDeterministic(t *testing.T) {
	a := []Config{{"x": 2}, {"x": 1}, {"x": 3}}
	SortConfigs(a)
	if a[0]["x"] != 1 || a[2]["x"] != 3 {
		t.Fatalf("sorted %v", a)
	}
}

func testCluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.MareNostrum(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunnerRunsAllTrials(t *testing.T) {
	cl := testCluster(t, 2)
	r, err := NewRunner(cl, nil, "dice", "max")
	if err != nil {
		t.Fatal(err)
	}
	cfgs, _ := PaperSpace().GridConfigs()
	SortConfigs(cfgs)
	var ran int32
	analysis, err := r.Run(cfgs, func(ctx *TrialContext) error {
		atomic.AddInt32(&ran, 1)
		// Report a metric correlated with lr so Best is predictable.
		ctx.Report(1, map[string]float64{"dice": 1 - ctx.Trial.Config.Float("lr")})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(ran) != 32 {
		t.Fatalf("ran %d trials", ran)
	}
	counts := analysis.StatusCounts()
	if counts[Terminated] != 32 {
		t.Fatalf("statuses %v", counts)
	}
	best := analysis.Best()
	if best == nil || best.Config.Float("lr") != 1e-5 {
		t.Fatalf("best config %v", best.Config)
	}
}

func TestRunnerConcurrencyBoundedByGPUs(t *testing.T) {
	cl := testCluster(t, 1) // 4 GPUs
	r, _ := NewRunner(cl, nil, "m", "max")
	var mu sync.Mutex
	active, peak := 0, 0
	cfgs := make([]Config, 12)
	for i := range cfgs {
		cfgs[i] = Config{"i": i}
	}
	// Trials rendezvous in pairs, proving at least two run concurrently;
	// the timeout keeps the test from hanging if they cannot.
	pair := make(chan struct{})
	_, err := r.Run(cfgs, func(ctx *TrialContext) error {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		select {
		case pair <- struct{}{}:
		case <-pair:
		case <-time.After(500 * time.Millisecond):
		}
		mu.Lock()
		active--
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 4 {
		t.Fatalf("peak concurrency %d exceeds 4 GPUs", peak)
	}
	if peak < 2 {
		t.Fatalf("peak concurrency %d shows no parallelism", peak)
	}
}

func TestRunnerPlacesOneTrialPerGPU(t *testing.T) {
	cl := testCluster(t, 2)
	r, _ := NewRunner(cl, nil, "m", "max")
	var mu sync.Mutex
	inUse := map[int]bool{}
	overlap := false
	cfgs := make([]Config, 16)
	for i := range cfgs {
		cfgs[i] = Config{"i": i}
	}
	_, err := r.Run(cfgs, func(ctx *TrialContext) error {
		g := ctx.Trial.GPU()
		mu.Lock()
		if inUse[g] {
			overlap = true
		}
		inUse[g] = true
		mu.Unlock()
		defer func() {
			mu.Lock()
			inUse[g] = false
			mu.Unlock()
		}()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if overlap {
		t.Fatal("two trials shared a GPU concurrently")
	}
}

func TestRunnerIsolatesErrorsAndPanics(t *testing.T) {
	cl := testCluster(t, 1)
	r, _ := NewRunner(cl, nil, "m", "max")
	cfgs := []Config{{"kind": "ok"}, {"kind": "err"}, {"kind": "panic"}}
	analysis, err := r.Run(cfgs, func(ctx *TrialContext) error {
		switch ctx.Trial.Config.Str("kind") {
		case "err":
			return errors.New("boom")
		case "panic":
			panic("kaboom")
		}
		ctx.Report(1, map[string]float64{"m": 1})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := analysis.StatusCounts()
	if counts[Terminated] != 1 || counts[Errored] != 2 {
		t.Fatalf("statuses %v", counts)
	}
	for _, tr := range analysis.Trials {
		if tr.Config.Str("kind") == "panic" {
			if tr.Err() == nil {
				t.Fatal("panic not converted to error")
			}
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	cl := testCluster(t, 1)
	if _, err := NewRunner(nil, nil, "m", "max"); err == nil {
		t.Fatal("nil cluster must error")
	}
	if _, err := NewRunner(cl, nil, "", "max"); err == nil {
		t.Fatal("empty metric must error")
	}
	if _, err := NewRunner(cl, nil, "m", "avg"); err == nil {
		t.Fatal("bad mode must error")
	}
	r, _ := NewRunner(cl, nil, "m", "max")
	if _, err := r.Run(nil, func(*TrialContext) error { return nil }); err == nil {
		t.Fatal("no configs must error")
	}
	if _, err := r.Run([]Config{{}}, nil); err == nil {
		t.Fatal("nil trainable must error")
	}
}

func TestMedianStoppingStopsLaggards(t *testing.T) {
	cl := testCluster(t, 1)
	sched := MedianStopping{Metric: "dice", Mode: "max", GracePeriod: 2, MinPeers: 2}
	r, _ := NewRunner(cl, sched, "dice", "max")
	// Quality is encoded in the config: trials 0..3 are good, 4..7 bad.
	cfgs := make([]Config, 8)
	for i := range cfgs {
		cfgs[i] = Config{"q": float64(8-i) / 8}
	}
	analysis, err := r.Run(cfgs, func(ctx *TrialContext) error {
		q := ctx.Trial.Config.Float("q")
		for step := 0; step < 10; step++ {
			if !ctx.Report(step, map[string]float64{"dice": q * float64(step+1) / 10}) {
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := analysis.StatusCounts()
	if counts[Stopped] == 0 {
		t.Fatal("median stopping never fired")
	}
	// The best trial must never be stopped.
	best := analysis.Best()
	if best.Status() == Stopped {
		t.Fatal("best trial was stopped early")
	}
}

func TestASHAStopsBottomTier(t *testing.T) {
	cl := testCluster(t, 1)
	sched := NewASHA("dice", "max", 2, 2)
	r, _ := NewRunner(cl, sched, "dice", "max")
	// Quality decreases over the trial sequence, so laggards reach rungs
	// already populated by better peers.
	cfgs := make([]Config, 8)
	for i := range cfgs {
		cfgs[i] = Config{"q": float64(8 - i)}
	}
	analysis, err := r.Run(cfgs, func(ctx *TrialContext) error {
		q := ctx.Trial.Config.Float("q")
		for step := 1; step <= 16; step++ {
			if !ctx.Report(step, map[string]float64{"dice": q}) {
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := analysis.StatusCounts()
	if counts[Stopped] == 0 {
		t.Fatal("ASHA never stopped a trial")
	}
	if counts[Terminated] == 0 {
		t.Fatal("ASHA stopped everything")
	}
}

func TestASHARungLadder(t *testing.T) {
	a := NewASHA("m", "max", 2, 3)
	cases := map[int]int{1: 0, 2: 2, 5: 2, 6: 6, 17: 6, 18: 18, 55: 54}
	for step, rung := range cases {
		if got := a.rungFor(step); got != rung {
			t.Fatalf("rungFor(%d) = %d, want %d", step, got, rung)
		}
	}
}

func TestTrialMetrics(t *testing.T) {
	tr := NewTrial(0, Config{})
	tr.addReport(Report{Step: 1, Metrics: map[string]float64{"d": 0.5}})
	tr.addReport(Report{Step: 2, Metrics: map[string]float64{"d": 0.8}})
	tr.addReport(Report{Step: 3, Metrics: map[string]float64{"d": 0.7}})
	if v, ok := tr.LastMetric("d"); !ok || v != 0.7 {
		t.Fatalf("last %v %v", v, ok)
	}
	if v, _ := tr.BestMetric("d", "max"); v != 0.8 {
		t.Fatalf("best max %v", v)
	}
	if v, _ := tr.BestMetric("d", "min"); v != 0.5 {
		t.Fatalf("best min %v", v)
	}
	if _, ok := tr.LastMetric("missing"); ok {
		t.Fatal("missing metric must report false")
	}
}

func TestAnalysisRanked(t *testing.T) {
	a := &Analysis{Metric: "d", Mode: "max"}
	for i, v := range []float64{0.3, 0.9, 0.6} {
		tr := NewTrial(i, Config{})
		tr.addReport(Report{Step: 1, Metrics: map[string]float64{"d": v}})
		a.Trials = append(a.Trials, tr)
	}
	noMetric := NewTrial(3, Config{})
	a.Trials = append(a.Trials, noMetric)
	ranked := a.Ranked()
	if ranked[0].ID != 1 || ranked[1].ID != 2 || ranked[2].ID != 0 {
		t.Fatalf("ranking wrong: %d %d %d", ranked[0].ID, ranked[1].ID, ranked[2].ID)
	}
	if ranked[3].ID != 3 {
		t.Fatal("metric-less trial must sort last")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Pending: "PENDING", Running: "RUNNING", Terminated: "TERMINATED",
		Stopped: "STOPPED", Errored: "ERRORED",
	} {
		if s.String() != want {
			t.Fatalf("%d renders %q", s, s.String())
		}
	}
}

func TestBestMetricMathIsFinite(t *testing.T) {
	tr := NewTrial(0, Config{})
	tr.addReport(Report{Step: 1, Metrics: map[string]float64{"d": math.Inf(-1)}})
	if v, ok := tr.BestMetric("d", "max"); !ok || !math.IsInf(v, -1) {
		t.Fatal("infinities must round-trip")
	}
}
