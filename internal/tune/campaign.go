package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// trialRecord is the on-disk terminal outcome of one trial, written under
// the runner's CheckpointDir so a re-run of the same campaign can restore
// finished trials instead of re-training them. Reports round-trip through
// JSON exactly (Go prints float64 with round-trip precision).
type trialRecord struct {
	ID      int      `json:"id"`
	Config  string   `json:"config"` // rendered deterministically, the match key
	Status  string   `json:"status"`
	Error   string   `json:"error,omitempty"`
	Reports []Report `json:"reports"`
}

// trialRecordPath returns the record file for trial id under dir.
func trialRecordPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("trial-%04d.json", id))
}

// TrialDir returns the per-trial checkpoint directory under a campaign
// directory — where core places each trial's session checkpoint. Both the
// data-parallel and the experiment-parallel strategy use this layout, so a
// campaign interrupted under one naming convention resumes under the same.
func TrialDir(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("trial-%04d", id))
}

// writeTrialRecord persists a trial's terminal outcome atomically.
func writeTrialRecord(dir string, t *Trial) error {
	rec := trialRecord{
		ID:      t.ID,
		Config:  renderConfig(t.Config),
		Status:  t.Status().String(),
		Reports: t.Reports(),
	}
	if err := t.Err(); err != nil {
		rec.Error = err.Error()
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	path := trialRecordPath(dir, t.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tune: %w", err)
	}
	return nil
}

// restoreTrial loads a prior terminal outcome for the trial, returning true
// when the trial was restored and needs no re-execution. Only successful
// terminal states restore: TERMINATED and STOPPED trials carry their full
// report history; ERRORED (and absent, mismatched or RUNNING) records leave
// the trial pending so the re-run retries it — resuming from its session
// checkpoint when the trainable wrote one.
func restoreTrial(dir string, t *Trial) bool {
	data, err := os.ReadFile(trialRecordPath(dir, t.ID))
	if err != nil {
		return false
	}
	var rec trialRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return false
	}
	if rec.ID != t.ID || rec.Config != renderConfig(t.Config) {
		return false
	}
	var status Status
	switch rec.Status {
	case Terminated.String():
		status = Terminated
	case Stopped.String():
		status = Stopped
	default:
		return false
	}
	t.restore(status, rec.Reports)
	return true
}
