package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// trialRecord is the on-disk terminal outcome of one trial, written under
// the runner's CheckpointDir so a re-run of the same campaign can restore
// finished trials instead of re-training them. Reports round-trip through
// JSON exactly (Go prints float64 with round-trip precision).
type trialRecord struct {
	ID      int      `json:"id"`
	Config  string   `json:"config"` // rendered deterministically, the match key
	Status  string   `json:"status"`
	Error   string   `json:"error,omitempty"`
	Reports []Report `json:"reports"`
}

// trialRecordPath returns the record file for trial id under dir.
func trialRecordPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("trial-%04d.json", id))
}

// TrialDir returns the per-trial checkpoint directory under a campaign
// directory — where core places each trial's session checkpoint. Both the
// data-parallel and the experiment-parallel strategy use this layout, so a
// campaign interrupted under one naming convention resumes under the same.
func TrialDir(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("trial-%04d", id))
}

// writeTrialRecord persists a trial's terminal outcome atomically.
func writeTrialRecord(dir string, t *Trial) error {
	rec := trialRecord{
		ID:      t.ID,
		Config:  renderConfig(t.Config),
		Status:  t.Status().String(),
		Reports: t.Reports(),
	}
	if err := t.Err(); err != nil {
		rec.Error = err.Error()
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	path := trialRecordPath(dir, t.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tune: %w", err)
	}
	return nil
}

// schedulerStatePath returns the persisted scheduler-state file under a
// campaign directory.
func schedulerStatePath(dir string) string {
	return filepath.Join(dir, "scheduler.json")
}

// schedulerStateFile wraps an exported scheduler state with the scheduler's
// name, so a campaign resumed under a different scheduler never imports a
// foreign state.
type schedulerStateFile struct {
	Scheduler string          `json:"scheduler"`
	State     json.RawMessage `json:"state"`
}

// writeSchedulerState persists a stateful scheduler's observations
// atomically; stateless schedulers are a no-op.
func writeSchedulerState(dir string, s Scheduler) error {
	ss, ok := s.(StatefulScheduler)
	if !ok {
		return nil
	}
	state, err := ss.ExportState()
	if err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	data, err := json.MarshalIndent(schedulerStateFile{Scheduler: s.Name(), State: state}, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	path := schedulerStatePath(dir)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tune: %w", err)
	}
	return nil
}

// loadSchedulerState restores a stateful scheduler from the campaign
// directory, returning true when a matching state was imported. A missing
// file, a name mismatch or a decode failure leaves the scheduler untouched
// — the caller falls back to replaying restored reports.
func loadSchedulerState(dir string, s Scheduler) bool {
	ss, ok := s.(StatefulScheduler)
	if !ok {
		return false
	}
	data, err := os.ReadFile(schedulerStatePath(dir))
	if err != nil {
		return false
	}
	var file schedulerStateFile
	if err := json.Unmarshal(data, &file); err != nil || file.Scheduler != s.Name() {
		return false
	}
	return ss.ImportState(file.State) == nil
}

// restoreTrial loads a prior terminal outcome for the trial, returning true
// when the trial was restored and needs no re-execution. Only successful
// terminal states restore: TERMINATED and STOPPED trials carry their full
// report history; ERRORED (and absent, mismatched or RUNNING) records leave
// the trial pending so the re-run retries it — resuming from its session
// checkpoint when the trainable wrote one.
func restoreTrial(dir string, t *Trial) bool {
	data, err := os.ReadFile(trialRecordPath(dir, t.ID))
	if err != nil {
		return false
	}
	var rec trialRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return false
	}
	if rec.ID != t.ID || rec.Config != renderConfig(t.Config) {
		return false
	}
	var status Status
	switch rec.Status {
	case Terminated.String():
		status = Terminated
	case Stopped.String():
		status = Stopped
	default:
		return false
	}
	t.restore(status, rec.Reports)
	return true
}
