package tune

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func exportAnalysis() *Analysis {
	a := &Analysis{Metric: "dice", Mode: "max"}
	for i, v := range []float64{0.5, 0.9} {
		tr := NewTrial(i, Config{"lr": 0.01 * float64(i+1), "loss": "dice"})
		tr.addReport(Report{Step: 1, Metrics: map[string]float64{"dice": v}})
		tr.setStatus(Terminated)
		a.Trials = append(a.Trials, tr)
	}
	noMetric := NewTrial(2, Config{"lr": 0.5, "loss": "bce"})
	noMetric.setStatus(Errored)
	a.Trials = append(a.Trials, noMetric)
	return a
}

func TestWriteCSV(t *testing.T) {
	a := exportAnalysis()
	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	header := rows[0]
	want := []string{"trial", "loss", "lr", "status", "reports", "best_dice"}
	if len(header) != len(want) {
		t.Fatalf("header %v", header)
	}
	for i := range want {
		if header[i] != want[i] {
			t.Fatalf("header %v, want %v", header, want)
		}
	}
	if rows[1][0] != "0" || rows[1][3] != "TERMINATED" || rows[1][5] != "0.5" {
		t.Fatalf("row 1: %v", rows[1])
	}
	if rows[3][3] != "ERRORED" || rows[3][5] != "" {
		t.Fatalf("errored row: %v", rows[3])
	}
}

func TestSummaryLeaderboard(t *testing.T) {
	a := exportAnalysis()
	s := a.Summary(2)
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Fatalf("summary:\n%s", s)
	}
	// Best trial (dice 0.9, id 1) first.
	if !strings.Contains(lines[1], "trial 1") || !strings.Contains(lines[1], "0.9000") {
		t.Fatalf("leaderboard order wrong:\n%s", s)
	}
}

func TestSummaryClampsN(t *testing.T) {
	a := exportAnalysis()
	if s := a.Summary(100); !strings.Contains(s, "Top 3") {
		t.Fatalf("clamp failed:\n%s", s)
	}
}
