package tune

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteCSV exports an analysis as CSV: one row per trial with its
// hyper-parameters, lifecycle status, report count and best metric. Columns
// are the union of all config keys, sorted, so heterogeneous spaces export
// cleanly.
func (a *Analysis) WriteCSV(w io.Writer) error {
	keySet := map[string]bool{}
	for _, t := range a.Trials {
		for k := range t.Config {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	cw := csv.NewWriter(w)
	header := append([]string{"trial"}, keys...)
	header = append(header, "status", "reports", "best_"+a.Metric)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	for _, t := range a.Trials {
		row := []string{strconv.Itoa(t.ID)}
		for _, k := range keys {
			v, ok := t.Config[k]
			if !ok {
				row = append(row, "")
				continue
			}
			row = append(row, fmt.Sprintf("%v", v))
		}
		row = append(row, t.Status().String(), strconv.Itoa(len(t.Reports())))
		if best, ok := t.BestMetric(a.Metric, a.Mode); ok {
			row = append(row, strconv.FormatFloat(best, 'g', 6, 64))
		} else {
			row = append(row, "")
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("tune: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	return nil
}

// Summary renders a human-readable leaderboard of the top n trials.
func (a *Analysis) Summary(n int) string {
	var b strings.Builder
	ranked := a.Ranked()
	if n > len(ranked) {
		n = len(ranked)
	}
	fmt.Fprintf(&b, "%d trials, metric %s (%s). Top %d:\n", len(a.Trials), a.Metric, a.Mode, n)
	for i := 0; i < n; i++ {
		t := ranked[i]
		best, ok := t.BestMetric(a.Metric, a.Mode)
		val := "n/a"
		if ok {
			val = strconv.FormatFloat(best, 'f', 4, 64)
		}
		fmt.Fprintf(&b, "%3d. trial %-3d %s=%s  %-10s  %s\n",
			i+1, t.ID, a.Metric, val, t.Status(), renderConfig(t.Config))
	}
	return b.String()
}
