// Package tune is the experiment-distribution layer of the reproduction,
// standing in for Ray.Tune: hyper-parameter search spaces, trial lifecycle,
// early-stopping schedulers (FIFO, median stopping, ASHA) and a concurrent
// runner that places one trial per GPU on a cluster, exactly the paper's
// experiment-parallel strategy.
package tune

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config is one hyper-parameter assignment.
type Config map[string]any

// Float returns the float64 value of key; integers are widened.
func (c Config) Float(key string) float64 {
	switch v := c[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	}
	panic(fmt.Sprintf("tune: config key %q is not numeric: %v", key, c[key]))
}

// Str returns the string value of key.
func (c Config) Str(key string) string {
	if s, ok := c[key].(string); ok {
		return s
	}
	panic(fmt.Sprintf("tune: config key %q is not a string: %v", key, c[key]))
}

// Has reports whether the key is present.
func (c Config) Has(key string) bool { _, ok := c[key]; return ok }

// clone returns a shallow copy.
func (c Config) clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Dimension is one axis of a search space.
type Dimension interface {
	Name() string
	// GridValues enumerates the axis for grid search; nil means the axis
	// is continuous and cannot be grid-enumerated.
	GridValues() []any
	// Sample draws one value for random search.
	Sample(rng *rand.Rand) any
}

type gridDim struct {
	name   string
	values []any
}

func (d gridDim) Name() string              { return d.name }
func (d gridDim) GridValues() []any         { return d.values }
func (d gridDim) Sample(rng *rand.Rand) any { return d.values[rng.Intn(len(d.values))] }

// Grid declares a discrete axis with explicit values.
func Grid(name string, values ...any) Dimension {
	if len(values) == 0 {
		panic("tune: Grid needs at least one value")
	}
	return gridDim{name: name, values: values}
}

// Choice is an alias of Grid matching Ray.Tune's tune.choice.
func Choice(name string, values ...any) Dimension { return Grid(name, values...) }

type uniformDim struct {
	name   string
	lo, hi float64
}

func (d uniformDim) Name() string              { return d.name }
func (d uniformDim) GridValues() []any         { return nil }
func (d uniformDim) Sample(rng *rand.Rand) any { return d.lo + rng.Float64()*(d.hi-d.lo) }

// Uniform declares a continuous axis sampled uniformly from [lo, hi).
func Uniform(name string, lo, hi float64) Dimension {
	if hi <= lo {
		panic("tune: Uniform needs hi > lo")
	}
	return uniformDim{name: name, lo: lo, hi: hi}
}

type logUniformDim struct {
	name   string
	lo, hi float64
}

func (d logUniformDim) Name() string      { return d.name }
func (d logUniformDim) GridValues() []any { return nil }
func (d logUniformDim) Sample(rng *rand.Rand) any {
	return math.Exp(math.Log(d.lo) + rng.Float64()*(math.Log(d.hi)-math.Log(d.lo)))
}

// LogUniform declares a continuous axis sampled log-uniformly from [lo, hi),
// the conventional scale for learning rates.
func LogUniform(name string, lo, hi float64) Dimension {
	if lo <= 0 || hi <= lo {
		panic("tune: LogUniform needs 0 < lo < hi")
	}
	return logUniformDim{name: name, lo: lo, hi: hi}
}

// LogSpaced declares a discrete axis of n values geometrically spaced over
// [lo, hi], endpoints included — the grid-search analogue of LogUniform.
// Learning-rate grids are conventionally extended this way: linearly spaced
// extensions of a range like the paper's 1e-2–3e-2 crowd the top decade,
// while log spacing covers each octave evenly.
func LogSpaced(name string, lo, hi float64, n int) Dimension {
	if lo <= 0 || hi <= lo {
		panic("tune: LogSpaced needs 0 < lo < hi")
	}
	if n < 2 {
		panic("tune: LogSpaced needs at least 2 points")
	}
	values := make([]any, n)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i < n; i++ {
		values[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	// Pin the endpoints exactly: exp(log(x)) may round a ULP away.
	values[0], values[n-1] = lo, hi
	return gridDim{name: name, values: values}
}

// Space is a product of dimensions.
type Space struct {
	dims []Dimension
}

// NewSpace builds a search space; dimension names must be unique.
func NewSpace(dims ...Dimension) (*Space, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("tune: empty search space")
	}
	seen := map[string]bool{}
	for _, d := range dims {
		if seen[d.Name()] {
			return nil, fmt.Errorf("tune: duplicate dimension %q", d.Name())
		}
		seen[d.Name()] = true
	}
	return &Space{dims: dims}, nil
}

// GridConfigs enumerates the cross product of all axes ("this set of
// configurations becomes the cross-product of the different values for each
// option", §III-B.2). It fails if any axis is continuous.
func (s *Space) GridConfigs() ([]Config, error) {
	out := []Config{{}}
	for _, d := range s.dims {
		values := d.GridValues()
		if values == nil {
			return nil, fmt.Errorf("tune: dimension %q is continuous; use SampleConfigs", d.Name())
		}
		next := make([]Config, 0, len(out)*len(values))
		for _, base := range out {
			for _, v := range values {
				c := base.clone()
				c[d.Name()] = v
				next = append(next, c)
			}
		}
		out = next
	}
	return out, nil
}

// SampleConfigs draws n random configurations.
func (s *Space) SampleConfigs(n int, seed int64) []Config {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Config, n)
	for i := range out {
		c := Config{}
		for _, d := range s.dims {
			c[d.Name()] = d.Sample(rng)
		}
		out[i] = c
	}
	return out
}

// Size returns the grid cardinality, or 0 if any axis is continuous.
func (s *Space) Size() int {
	n := 1
	for _, d := range s.dims {
		vs := d.GridValues()
		if vs == nil {
			return 0
		}
		n *= len(vs)
	}
	return n
}

// PaperSpace returns the benchmark's hyper-parameter search space: a
// 4 × 2 × 2 × 2 = 32-experiment cross product over learning rate, loss
// variant, optimizer and data augmentation.
func PaperSpace() *Space {
	s, err := NewSpace(
		Grid("lr", 1e-5, 3e-5, 1e-4, 3e-4),
		Grid("loss", "dice", "quadratic-dice"),
		Grid("optimizer", "adam", "sgd"),
		Grid("augment", "none", "flip"),
	)
	if err != nil {
		panic(err)
	}
	return s
}

// SortConfigs orders configurations deterministically by their rendered
// form, so distributed schedulers enumerate trials identically.
func SortConfigs(cfgs []Config) {
	sort.Slice(cfgs, func(i, j int) bool {
		return renderConfig(cfgs[i]) < renderConfig(cfgs[j])
	})
}

func renderConfig(c Config) string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%v;", k, c[k])
	}
	return s
}
