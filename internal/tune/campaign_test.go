package tune

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func campaignConfigs(t *testing.T) []Config {
	t.Helper()
	space, err := NewSpace(
		Grid("lr", 0.01, 0.02, 0.03),
		Grid("optimizer", "adam", "sgd"),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := space.GridConfigs()
	if err != nil {
		t.Fatal(err)
	}
	SortConfigs(cfgs)
	return cfgs
}

// TestCampaignResumeSkipsCompletedTrials: a campaign interrupted after some
// trials finished (modelled by one trial erroring like a preempted job)
// restores the finished trials — status, reports and all — and re-runs only
// the unfinished one on the next Run with the same directory.
func TestCampaignResumeSkipsCompletedTrials(t *testing.T) {
	cl := testCluster(t, 2)
	dir := t.TempDir()
	cfgs := campaignConfigs(t)

	// First pass: trial with lr=0.02/adam dies mid-flight.
	r1, err := NewRunner(cl, nil, "dice", "max")
	if err != nil {
		t.Fatal(err)
	}
	r1.CheckpointDir = dir
	preempted := func(cfg Config) bool {
		return cfg.Float("lr") == 0.02 && cfg.Str("optimizer") == "adam"
	}
	a1, err := r1.Run(cfgs, func(ctx *TrialContext) error {
		cfg := ctx.Trial.Config
		ctx.Report(0, map[string]float64{"dice": cfg.Float("lr")})
		if preempted(cfg) {
			return errors.New("simulated preemption")
		}
		ctx.Report(1, map[string]float64{"dice": 2 * cfg.Float("lr")})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := a1.StatusCounts()
	if counts[Terminated] != 5 || counts[Errored] != 1 {
		t.Fatalf("first pass statuses %v", counts)
	}

	// Second pass, same directory: only the preempted trial re-executes.
	r2, err := NewRunner(cl, nil, "dice", "max")
	if err != nil {
		t.Fatal(err)
	}
	r2.CheckpointDir = dir
	var mu sync.Mutex
	var executed []Config
	a2, err := r2.Run(cfgs, func(ctx *TrialContext) error {
		mu.Lock()
		executed = append(executed, ctx.Trial.Config)
		mu.Unlock()
		cfg := ctx.Trial.Config
		ctx.Report(0, map[string]float64{"dice": cfg.Float("lr")})
		ctx.Report(1, map[string]float64{"dice": 2 * cfg.Float("lr")})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 1 || !preempted(executed[0]) {
		t.Fatalf("re-executed %v, want exactly the preempted trial", executed)
	}
	counts = a2.StatusCounts()
	if counts[Terminated] != 6 {
		t.Fatalf("second pass statuses %v", counts)
	}
	// Restored trials keep their full report history.
	for _, tr := range a2.Trials {
		if len(tr.Reports()) != 2 {
			t.Fatalf("trial %d has %d reports, want 2", tr.ID, len(tr.Reports()))
		}
		if d, ok := tr.BestMetric("dice", "max"); !ok || d != 2*tr.Config.Float("lr") {
			t.Fatalf("trial %d best dice %v", tr.ID, d)
		}
	}

	// Third pass: everything restored, nothing executes.
	r3, err := NewRunner(cl, nil, "dice", "max")
	if err != nil {
		t.Fatal(err)
	}
	r3.CheckpointDir = dir
	ran := false
	if _, err := r3.Run(cfgs, func(ctx *TrialContext) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("fully recorded campaign must not execute any trial")
	}
}

// TestCampaignReplayFeedsStatefulScheduler: restored trials' reports must
// repopulate a stateful scheduler's internals (ASHA's rungs), so decisions
// about trials re-run after a resume rest on the full campaign evidence.
func TestCampaignReplayFeedsStatefulScheduler(t *testing.T) {
	cl := testCluster(t, 1)
	dir := t.TempDir()
	cfgs := []Config{{"lr": 0.01}, {"lr": 0.02}, {"lr": 0.03}, {"lr": 0.04}}
	strongDice := map[float64]float64{0.01: 0.9, 0.02: 0.8, 0.03: 0.7, 0.04: 0.1}

	// First pass (FIFO): the three strong trials finish with reports at the
	// ASHA rung step; the weak one is preempted before reporting.
	r1, err := NewRunner(cl, nil, "dice", "max")
	if err != nil {
		t.Fatal(err)
	}
	r1.CheckpointDir = dir
	_, err = r1.Run(cfgs, func(ctx *TrialContext) error {
		lr := ctx.Trial.Config.Float("lr")
		if lr == 0.04 {
			return errors.New("simulated preemption")
		}
		ctx.Report(2, map[string]float64{"dice": strongDice[lr]})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Second pass under ASHA (MinT=2, η=2): only the weak trial re-runs.
	// Its rung-2 report of 0.1 ranks bottom-half against the three replayed
	// values {0.9, 0.8, 0.7}, so ASHA must stop it — which can only happen
	// if the restored reports were fed back into the scheduler (a bare
	// one-value rung returns Continue for lack of evidence).
	r2, err := NewRunner(cl, NewASHA("dice", "max", 2, 2), "dice", "max")
	if err != nil {
		t.Fatal(err)
	}
	r2.CheckpointDir = dir
	a2, err := r2.Run(cfgs, func(ctx *TrialContext) error {
		lr := ctx.Trial.Config.Float("lr")
		if ctx.Report(2, map[string]float64{"dice": strongDice[lr]}) {
			t.Errorf("weak trial lr=%v must be stopped at the rung", lr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts := a2.StatusCounts(); counts[Stopped] != 1 || counts[Terminated] != 3 {
		t.Fatalf("statuses %v, want 3 terminated + 1 stopped", counts)
	}
}

// TestCampaignConfigMismatchReruns: records guard against silently reusing
// results for a different configuration at the same trial index.
func TestCampaignConfigMismatchReruns(t *testing.T) {
	cl := testCluster(t, 1)
	dir := t.TempDir()

	run := func(cfgs []Config) (int, error) {
		r, err := NewRunner(cl, nil, "dice", "max")
		if err != nil {
			t.Fatal(err)
		}
		r.CheckpointDir = dir
		n := 0
		var mu sync.Mutex
		_, err = r.Run(cfgs, func(ctx *TrialContext) error {
			mu.Lock()
			n++
			mu.Unlock()
			ctx.Report(0, map[string]float64{"dice": 0.5})
			return nil
		})
		return n, err
	}

	if n, err := run([]Config{{"lr": 0.01}}); err != nil || n != 1 {
		t.Fatalf("first run executed %d (err %v)", n, err)
	}
	// Same index, different config: must re-run, then overwrite the record.
	if n, err := run([]Config{{"lr": 0.07}}); err != nil || n != 1 {
		t.Fatalf("mismatched config executed %d (err %v)", n, err)
	}
	if n, err := run([]Config{{"lr": 0.07}}); err != nil || n != 0 {
		t.Fatalf("matching re-run executed %d (err %v)", n, err)
	}
}

// TestTrialDirPlacement: trainables get a stable per-trial directory under
// the campaign root, and none without a campaign.
func TestTrialDirPlacement(t *testing.T) {
	cl := testCluster(t, 1)
	dir := t.TempDir()
	r, err := NewRunner(cl, nil, "dice", "max")
	if err != nil {
		t.Fatal(err)
	}
	r.CheckpointDir = dir
	var got string
	_, err = r.Run([]Config{{"lr": 0.01}}, func(ctx *TrialContext) error {
		d, err := ctx.Dir()
		if err != nil {
			return err
		}
		got = d
		return os.WriteFile(filepath.Join(d, "marker"), []byte("x"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := TrialDir(dir, 0); got != want {
		t.Fatalf("trial dir %q, want %q", got, want)
	}
	if _, err := os.Stat(filepath.Join(got, "marker")); err != nil {
		t.Fatal("trial dir not writable:", err)
	}

	// No campaign: Dir is empty.
	r2, err := NewRunner(cl, nil, "dice", "max")
	if err != nil {
		t.Fatal(err)
	}
	_, err = r2.Run([]Config{{"lr": 0.01}}, func(ctx *TrialContext) error {
		d, err := ctx.Dir()
		if err != nil || d != "" {
			t.Errorf("dir %q err %v, want empty", d, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLogSpacedGrid: the log-scale grid helper pins its endpoints exactly
// and spaces interior points geometrically.
func TestLogSpacedGrid(t *testing.T) {
	d := LogSpaced("lr", 1e-2, 3e-2, 5)
	vals := d.GridValues()
	if len(vals) != 5 {
		t.Fatalf("%d values", len(vals))
	}
	if vals[0].(float64) != 1e-2 || vals[4].(float64) != 3e-2 {
		t.Fatalf("endpoints %v, %v", vals[0], vals[4])
	}
	// Constant ratio between neighbours (log spacing), within float noise.
	r0 := vals[1].(float64) / vals[0].(float64)
	for i := 1; i < 4; i++ {
		r := vals[i+1].(float64) / vals[i].(float64)
		if r/r0 < 0.999999 || r/r0 > 1.000001 {
			t.Fatalf("ratio %v at %d, want %v", r, i, r0)
		}
	}
	for _, bad := range []func(){
		func() { LogSpaced("x", 0, 1, 3) },
		func() { LogSpaced("x", 2, 1, 3) },
		func() { LogSpaced("x", 1, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid LogSpaced must panic")
				}
			}()
			bad()
		}()
	}
}
