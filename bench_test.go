// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations around them. Run with:
//
//	go test -bench=. -benchmem
//
// Table I and Figure 4 benches execute the full discrete-event campaign
// simulation and report the resulting speed-ups as benchmark metrics;
// the pipeline and all-reduce benches measure the real implementations.
package repro

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/allreduce"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/loss"
	"repro/internal/msd"
	"repro/internal/netsim"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/record"
	"repro/internal/tensor"
	"repro/internal/unet"
	"repro/internal/volume"
)

// BenchmarkTable1 regenerates the paper's Table I (both methods, 1..32
// GPUs, 3 repetitions) per iteration and reports the headline speed-ups.
func BenchmarkTable1(b *testing.B) {
	cfg, err := experiments.PaperCampaign()
	if err != nil {
		b.Fatal(err)
	}
	var rows []experiments.Measurement
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Data.Speedup, "data-speedup@32")
	b.ReportMetric(last.Exp.Speedup, "exp-speedup@32")
}

// BenchmarkTable1DataParallel times one data-parallel campaign per GPU
// count (the left half of Table I).
func BenchmarkTable1DataParallel(b *testing.B) {
	p, err := perfmodel.Paper()
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range experiments.PaperGPUCounts {
		b.Run(fmt.Sprintf("gpus=%d", n), func(b *testing.B) {
			var sec float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(1))
				epochs := make([]int, 32)
				for j := range epochs {
					epochs[j] = p.ConvergenceEpochs(rng)
				}
				sec = experiments.DataParallelCampaignSec(p, n, epochs, rng)
			}
			b.ReportMetric(sec/3600, "simulated-hours")
		})
	}
}

// BenchmarkTable1ExperimentParallel times one experiment-parallel campaign
// per GPU count (the right half of Table I).
func BenchmarkTable1ExperimentParallel(b *testing.B) {
	p, err := perfmodel.Paper()
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range experiments.PaperGPUCounts {
		b.Run(fmt.Sprintf("gpus=%d", n), func(b *testing.B) {
			var sec float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(1))
				epochs := make([]int, 32)
				for j := range epochs {
					epochs[j] = p.ConvergenceEpochs(rng)
				}
				sec = experiments.ExperimentParallelCampaignSec(p, n, epochs, rng)
			}
			b.ReportMetric(sec/3600, "simulated-hours")
		})
	}
}

// BenchmarkFig4a regenerates the elapsed-time curves with whiskers.
func BenchmarkFig4a(b *testing.B) {
	cfg, err := experiments.PaperCampaign()
	if err != nil {
		b.Fatal(err)
	}
	var dataS, expS experiments.Series
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dataS, expS = experiments.Fig4a(rows)
	}
	b.ReportMetric(dataS.Mean[len(dataS.Mean)-1]/3600, "data-hours@32")
	b.ReportMetric(expS.Mean[len(expS.Mean)-1]/3600, "exp-hours@32")
}

// BenchmarkFig4b regenerates the speed-up curves.
func BenchmarkFig4b(b *testing.B) {
	cfg, err := experiments.PaperCampaign()
	if err != nil {
		b.Fatal(err)
	}
	var dataS, expS experiments.Series
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dataS, expS = experiments.Fig4b(rows)
	}
	b.ReportMetric(dataS.Mean[len(dataS.Mean)-1], "data-speedup@32")
	b.ReportMetric(expS.Mean[len(expS.Mean)-1], "exp-speedup@32")
}

// benchSamples builds a small preprocessed dataset once per benchmark.
func benchSamples(b *testing.B, n, dim int) []*volume.Sample {
	b.Helper()
	cfg := msd.Config{Cases: n, D: dim, H: dim, W: dim, Seed: 3}
	out := make([]*volume.Sample, n)
	for i := 0; i < n; i++ {
		s, err := volume.Preprocess(msd.GenerateCase(cfg, i), 4)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = s
	}
	return out
}

// BenchmarkPipelineOnlineVsOffline reproduces the §III-B.1 ablation: one
// training epoch's input path with per-epoch preprocessing (online) versus
// pre-binarized TFRecords (offline).
func BenchmarkPipelineOnlineVsOffline(b *testing.B) {
	cfg := msd.Config{Cases: 8, D: 12, H: 12, W: 12, Seed: 5}
	var buf bytes.Buffer
	samples := make([]*volume.Sample, cfg.Cases)
	for i := range samples {
		s, err := volume.Preprocess(msd.GenerateCase(cfg, i), 4)
		if err != nil {
			b.Fatal(err)
		}
		samples[i] = s
	}
	if err := record.WriteSamples(&buf, samples); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()

	b.Run("online", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Regenerate + preprocess every epoch, as before the paper's fix.
			for c := 0; c < cfg.Cases; c++ {
				if _, err := volume.Preprocess(msd.GenerateCase(cfg, c), 4); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("offline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := record.ReadSamples(bytes.NewReader(raw))
			if err != nil || len(got) != cfg.Cases {
				b.Fatalf("%v (%d samples)", err, len(got))
			}
		}
	})
}

// BenchmarkAllReduce compares the real ring, naive and hierarchical
// reductions at the paper's gradient size (all-reduce ablation).
func BenchmarkAllReduce(b *testing.B) {
	const replicas = 8
	size := unet.MustNew(unet.PaperConfig()).ParamCount()
	mk := func() [][]float32 {
		bufs := make([][]float32, replicas)
		for i := range bufs {
			bufs[i] = make([]float32, size)
			for j := range bufs[i] {
				bufs[i][j] = float32(i + j)
			}
		}
		return bufs
	}
	b.Run("ring", func(b *testing.B) {
		bufs := mk()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := allreduce.Ring(bufs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		bufs := mk()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := allreduce.Naive(bufs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hierarchical", func(b *testing.B) {
		bufs := mk()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := allreduce.Hierarchical(bufs, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAllReduceModel compares the analytic ring vs naive cost at the
// paper's message size across the GPU ladder.
func BenchmarkAllReduceModel(b *testing.B) {
	f := netsim.MareNostrum()
	size := 4.0 * float64(unet.MustNew(unet.PaperConfig()).ParamCount())
	var ring, naive float64
	for i := 0; i < b.N; i++ {
		for _, n := range experiments.PaperGPUCounts {
			ring += f.RingAllReduceTime(size, n, 1e-3)
			naive += f.NaiveAllReduceTime(size, n, 1e-3)
		}
	}
	b.ReportMetric(naive/ring, "naive/ring-cost")
}

// BenchmarkUNetForward measures the real forward pass of a scaled-down
// U-Net on one phantom volume.
func BenchmarkUNetForward(b *testing.B) {
	cfg := unet.Config{InChannels: 4, OutChannels: 1, BaseFilters: 4, Steps: 3, Kernel: 3, UpKernel: 2, Seed: 1}
	u := unet.MustNew(cfg)
	u.SetTraining(false)
	s := benchSamples(b, 1, 16)[0]
	in, _, err := volume.Batch([]*volume.Sample{s})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Forward(in)
	}
}

// BenchmarkUNetTrainStep measures a full real training step: forward, Dice
// loss, backward.
func BenchmarkUNetTrainStep(b *testing.B) {
	cfg := unet.Config{InChannels: 4, OutChannels: 1, BaseFilters: 4, Steps: 3, Kernel: 3, UpKernel: 2, Seed: 1}
	u := unet.MustNew(cfg)
	s := benchSamples(b, 2, 16)
	in, mask, err := volume.Batch(s)
	if err != nil {
		b.Fatal(err)
	}
	l := loss.NewDice()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.ZeroGrads()
		pred := u.Forward(in)
		_, grad := l.Eval(pred, mask)
		u.Backward(grad)
	}
}

// BenchmarkPrefetchDepth sweeps the pipeline prefetch depth.
func BenchmarkPrefetchDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := pipeline.FromFunc(64, func(i int) *tensor.Tensor {
					t := tensor.New(4, 8, 8)
					t.Fill(float32(i))
					return t
				})
				n := pipeline.Prefetch(d, depth).Count()
				if n != 64 {
					b.Fatalf("lost elements: %d", n)
				}
			}
		})
	}
}

// BenchmarkInterleaveWidth sweeps the interleave cycle length.
func BenchmarkInterleaveWidth(b *testing.B) {
	for _, cycle := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cycle=%d", cycle), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				shards := pipeline.FromFunc(8, func(i int) int { return i })
				d := pipeline.Interleave(shards, cycle, func(shard int) pipeline.Dataset[int] {
					return pipeline.FromFunc(16, func(j int) int { return shard*16 + j })
				})
				if n := d.Count(); n != 128 {
					b.Fatalf("lost elements: %d", n)
				}
			}
		})
	}
}

// BenchmarkMemoryModel exercises the 16 GB memory wall check across batch
// sizes (ablation: per-replica batch 1 vs 2 under the V100 model).
func BenchmarkMemoryModel(b *testing.B) {
	dev := gpusim.V100()
	cost, err := gpusim.CostUNet(unet.PaperConfig(), 152, 240, 240)
	if err != nil {
		b.Fatal(err)
	}
	fits := 0
	for i := 0; i < b.N; i++ {
		fits = 0
		for batch := 1; batch <= 8; batch++ {
			if dev.FitsMemory(cost, batch) {
				fits++
			}
		}
	}
	b.ReportMetric(float64(fits), "max-batch")
}
