// Integration tests exercising the whole stack end to end: the E7
// correctness reference (real training to the paper's Dice band), the full
// NIfTI → TFRecord → pipeline → training data path, and cross-strategy
// consistency of the hyper-parameter search.
package repro

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/loss"
	"repro/internal/msd"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/raysgd"
	"repro/internal/record"
	"repro/internal/tensor"
	"repro/internal/tune"
	"repro/internal/unet"
	"repro/internal/volume"
)

// phantoms builds preprocessed samples for a range of case indices.
func phantoms(t *testing.T, cfg msd.Config, lo, hi, minDiv int) []*volume.Sample {
	t.Helper()
	out := make([]*volume.Sample, 0, hi-lo)
	for i := lo; i < hi; i++ {
		s, err := volume.Preprocess(msd.GenerateCase(cfg, i), minDiv)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// TestTrainingReachesReferenceDice is the E7 experiment: real data-parallel
// training of a 3D U-Net on brain phantoms must reach the paper's reported
// Dice score of 0.89 on held-out validation cases.
func TestTrainingReachesReferenceDice(t *testing.T) {
	if testing.Short() {
		t.Skip("real training takes ~1 minute; skipped in -short")
	}
	cfg := msd.Config{Cases: 20, D: 16, H: 16, W: 16, Seed: 3}
	train := phantoms(t, cfg, 0, 16, 4)
	val := phantoms(t, cfg, 16, 20, 4)

	net := unet.Config{InChannels: 4, OutChannels: 1, BaseFilters: 4, Steps: 3, Kernel: 3, UpKernel: 2, Seed: 2}
	cl, err := cluster.ForGPUs(2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := raysgd.New(raysgd.Config{
		Cluster:         cl,
		GPUs:            2,
		Net:             net,
		Loss:            "dice",
		Optimizer:       "adam",
		BaseLR:          0.75e-3, // ×2 replicas = 1.5e-3, the paper's scaling rule
		BatchPerReplica: 2,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.89
	best := 0.0
	_, err = tr.Fit(train, val, 60, func(s raysgd.EpochStats) bool {
		if s.ValDice > best {
			best = s.ValDice
		}
		return best < target
	})
	if err != nil {
		t.Fatal(err)
	}
	if best < target {
		t.Fatalf("validation Dice %.4f below the paper's reference %.2f", best, target)
	}
	if !tr.InSync() {
		t.Fatal("replicas diverged during the full training run")
	}
}

// TestEndToEndDataPath drives the complete ingestion path the paper
// describes: phantom generation → NIfTI on disk → load → preprocess →
// offline TFRecord binarization → decode → train one epoch.
func TestEndToEndDataPath(t *testing.T) {
	dir := t.TempDir()
	ds, err := msd.Generate(msd.Config{Cases: 6, D: 8, H: 8, W: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteNIfTI(dir); err != nil {
		t.Fatal(err)
	}
	names, err := msd.ListCases(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 6 {
		t.Fatalf("found %d cases", len(names))
	}

	// Offline binarization from the on-disk NIfTI files.
	var samples []*volume.Sample
	for _, n := range names {
		v, err := msd.LoadCase(dir, n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := volume.Preprocess(v, 2)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
	}
	recPath := filepath.Join(dir, "train.tfrecord")
	f, err := os.Create(recPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := record.WriteSamples(f, samples); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Decode and train one epoch on the binarized samples.
	rf, err := os.Open(recPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	decoded, err := record.ReadSamples(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(samples) {
		t.Fatalf("decoded %d of %d samples", len(decoded), len(samples))
	}

	cl, err := cluster.ForGPUs(2)
	if err != nil {
		t.Fatal(err)
	}
	net := unet.Config{InChannels: 4, OutChannels: 1, BaseFilters: 2, Steps: 2, Kernel: 3, UpKernel: 2, Seed: 8}
	tr, err := raysgd.New(raysgd.Config{
		Cluster: cl, GPUs: 2, Net: net,
		Loss: "dice", Optimizer: "adam", BaseLR: 1e-3, BatchPerReplica: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Fit(decoded[:4], decoded[4:], 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 1 {
		t.Fatalf("expected 1 step (global batch 4 over 4 samples), got %d", stats.Steps)
	}
}

// TestStrategiesAgreeOnBestConfig runs the same tiny search under both
// distribution strategies; with identical seeds and trial sets they must
// crown the same winning configuration.
func TestStrategiesAgreeOnBestConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 8 tiny models; skipped in -short")
	}
	mk := func(strategy core.Strategy, gpus int) core.Options {
		opts := core.DefaultOptions()
		opts.Strategy = strategy
		opts.GPUs = gpus
		space, err := tune.NewSpace(
			tune.Grid("lr", 0.002, 0.02),
			tune.Grid("loss", "dice", "quadratic-dice"),
			tune.Grid("optimizer", "adam"),
		)
		if err != nil {
			t.Fatal(err)
		}
		opts.Space = space
		opts.Epochs = 2
		opts.MaxTrainCases = 4
		opts.MaxValCases = 2
		return opts
	}
	data, err := core.Run(mk(core.StrategyData, 1))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := core.Run(mk(core.StrategyExperiment, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Every experiment trains with GPUs-independent seeds in experiment
	// mode (1 GPU each) vs data mode (1 GPU here too), so dice values and
	// therefore the winner must coincide.
	if data.Best.Float("lr") != exp.Best.Float("lr") || data.Best.Str("loss") != exp.Best.Str("loss") {
		t.Fatalf("strategies disagree: data %v vs exp %v (dice %.4f vs %.4f)",
			data.Best, exp.Best, data.BestDice, exp.BestDice)
	}
}

// TestMultiClassTrainingPath exercises the original 4-class MSD task (the
// extension the paper binarizes away): U-Net with 4 output channels +
// channel softmax + multi-class Dice loss, trained for a few steps on
// one-hot phantom labels.
func TestMultiClassTrainingPath(t *testing.T) {
	cfg := msd.Config{Cases: 4, D: 8, H: 8, W: 8, Seed: 31}
	var samples []*volume.Sample
	for i := 0; i < 4; i++ {
		s, err := volume.PreprocessMultiClass(msd.GenerateCase(cfg, i), 2)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
	}
	in, masks, err := volume.Batch(samples)
	if err != nil {
		t.Fatal(err)
	}
	u := unet.MustNew(unet.Config{
		InChannels: 4, OutChannels: volume.NumClasses, BaseFilters: 2, Steps: 2,
		Kernel: 3, UpKernel: 2, Seed: 6,
	})
	softmax := nn.NewChannelSoftmax()
	l := loss.NewMultiDice()
	opt := optim.NewAdam(5e-3)

	var first, last float64
	for step := 0; step < 15; step++ {
		u.ZeroGrads()
		logits := u.Forward(in)
		probs := softmax.Forward(logits)
		v, grad := l.Eval(probs, masks)
		if step == 0 {
			first = v
		}
		last = v
		u.Backward(softmax.Backward(grad))
		opt.Step(u.Params())
	}
	if !(last < first) {
		t.Fatalf("multi-class loss did not decrease: %v -> %v", first, last)
	}
	// Per-class dice must be defined for all four classes.
	logits := u.Forward(in)
	probs := softmax.Forward(logits)
	scores := loss.PerClassDice(probs, masks, 0.1)
	if len(scores) != volume.NumClasses {
		t.Fatalf("per-class scores %v", scores)
	}
	for c, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("class %d dice %v", c, s)
		}
	}
}

// TestCheckpointResumeMidTraining verifies the tune-style pause/resume
// contract: training N epochs straight equals training k epochs, saving,
// loading into a fresh trainer and finishing — when batch-norm running
// stats are part of neither path's evaluation.
func TestCheckpointResumeMidTraining(t *testing.T) {
	cfg := msd.Config{Cases: 4, D: 8, H: 8, W: 8, Seed: 37}
	var train []*volume.Sample
	for i := 0; i < 4; i++ {
		s, err := volume.Preprocess(msd.GenerateCase(cfg, i), 2)
		if err != nil {
			t.Fatal(err)
		}
		train = append(train, s)
	}
	net := unet.Config{InChannels: 4, OutChannels: 1, BaseFilters: 2, Steps: 2, Kernel: 3, UpKernel: 2, Seed: 8}
	cl, err := cluster.ForGPUs(1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *raysgd.Trainer {
		tr, err := raysgd.New(raysgd.Config{
			Cluster: cl, GPUs: 1, Net: net,
			Loss: "dice", Optimizer: "sgd", BaseLR: 0.05, BatchPerReplica: 2, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := mk()
	if _, err := a.Fit(train, nil, 2, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mid.ckpt")
	if err := ckpt.SaveFile(path, a.Model().Params(), map[string]float64{"epoch": 2}); err != nil {
		t.Fatal(err)
	}

	b := mk()
	meta, err := ckpt.LoadFile(path, b.Model().Params())
	if err != nil {
		t.Fatal(err)
	}
	if meta["epoch"] != 2 {
		t.Fatalf("meta %v", meta)
	}
	// The restored model must match the saved one parameter-for-parameter.
	pa, pb := a.Model().Params(), b.Model().Params()
	for i := range pa {
		if tensor.MaxAbsDiff(pa[i].Value, pb[i].Value) != 0 {
			t.Fatalf("param %s differs after restore", pa[i].Name)
		}
	}
}

// TestPaperModelMemoryStory ties the model and memory substrate together:
// the paper-scale U-Net must fit batch 2 on a V100 but not much more, and
// the real network must match the analytic parameter count used by the
// simulation (asserted in gpusim tests; revalidated here at the seam).
func TestPaperModelMemoryStory(t *testing.T) {
	u := unet.MustNew(unet.PaperConfig())
	if u.ParamCount() != 409657 {
		t.Fatalf("param count %d", u.ParamCount())
	}
}
